"""Blocks: the unit of scoring, reduction, and redistribution.

A :class:`Block` carries a regular subarray of the domain (its *extent* in
global index space) plus the field payload for that extent.  After the
reduction step a block's payload is replaced by a coarser representation
from the reduction ladder — level 1 keeps every second point plus the high
edge, level 2 keeps only the 8 corner values (2×2×2) — but its extent is
unchanged, so downstream consumers can still reconstruct an interpolated
approximation over the original region.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

#: The reduction ladder: 0 = full resolution, 1 = strided downsample
#: (every second point plus the high edge, corners preserved exactly),
#: 2 = the paper's 2×2×2 corner reduction.
REDUCTION_LEVELS: Tuple[int, ...] = (0, 1, 2)


def axis_sample_indices(n: int) -> Tuple[int, ...]:
    """Level-1 sample indices along an axis of length ``n``.

    Every second point starting at 0, with the last point ``n - 1`` always
    included so both corners survive exactly — that is what keeps a level-1
    block continuous with its (full or reduced) neighbours, the same
    guarantee the corner reduction gives.  ``n = 1`` yields ``(0,)``.
    """
    if n < 1:
        raise ValueError(f"axis length must be >= 1, got {n}")
    samples = list(range(0, n, 2))
    if samples[-1] != n - 1:
        samples.append(n - 1)
    return tuple(samples)


def level_shape(level: int, full_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Payload shape of a block of ``full_shape`` at reduction ``level``."""
    if level == 0:
        return tuple(int(s) for s in full_shape)
    if level == 1:
        return tuple(len(axis_sample_indices(int(n))) for n in full_shape)
    if level == 2:
        return (2, 2, 2)
    raise ValueError(f"level must be one of {REDUCTION_LEVELS}, got {level}")


@dataclass(frozen=True)
class BlockExtent:
    """Half-open index extent ``[start, stop)`` of a block in global index space."""

    start: Tuple[int, int, int]
    stop: Tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.start) != 3 or len(self.stop) != 3:
            raise ValueError("start and stop must be 3-tuples")
        start = tuple(int(v) for v in self.start)
        stop = tuple(int(v) for v in self.stop)
        for lo, hi in zip(start, stop):
            if lo < 0 or hi <= lo:
                raise ValueError(f"invalid extent: start={start} stop={stop}")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "stop", stop)

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Number of points covered along each axis."""
        return tuple(hi - lo for lo, hi in zip(self.start, self.stop))

    @property
    def npoints(self) -> int:
        """Total number of points covered by the extent."""
        sx, sy, sz = self.shape
        return sx * sy * sz

    @property
    def slices(self) -> Tuple[slice, slice, slice]:
        """Index slices selecting this extent from a global array."""
        return tuple(slice(lo, hi) for lo, hi in zip(self.start, self.stop))

    def contains(self, point: Tuple[int, int, int]) -> bool:
        """True if the global index ``point`` lies inside the extent."""
        return all(lo <= p < hi for p, lo, hi in zip(point, self.start, self.stop))

    def overlaps(self, other: "BlockExtent") -> bool:
        """True if the two extents share at least one point."""
        return all(
            lo1 < hi2 and lo2 < hi1
            for lo1, hi1, lo2, hi2 in zip(self.start, self.stop, other.start, other.stop)
        )

    def corner_indices(self) -> Tuple[Tuple[int, int, int], ...]:
        """Global indices of the 8 corner points (last point is ``stop - 1``)."""
        xs = (self.start[0], self.stop[0] - 1)
        ys = (self.start[1], self.stop[1] - 1)
        zs = (self.start[2], self.stop[2] - 1)
        return tuple((i, j, k) for i in xs for j in ys for k in zs)


@dataclass(frozen=True)
class Block:
    """A block of field data.

    Attributes
    ----------
    block_id:
        Globally unique integer id (dense, ``0 .. nblocks-1``).
    extent:
        Position of the block in global index space.
    data:
        Payload array.  Shape equals ``extent.shape`` for a full block, or
        ``(2, 2, 2)`` (``(2, 2)`` for 2-D use) for a reduced block.
    owner:
        Rank currently responsible for this block.
    home:
        Rank that originally produced the block (before redistribution).
    reduced:
        Whether the payload has been reduced (``level > 0``).
    score:
        Relevance score assigned by the scoring step, if any.
    field_name:
        Name of the field the payload belongs to (e.g. ``"dbz"``).
    level:
        Rung of the reduction ladder the payload sits on: 0 = full
        resolution, 1 = strided downsample (:func:`axis_sample_indices`
        per axis), 2 = 2×2×2 corners.  ``None`` (the default) derives the
        level from ``reduced`` — 2 when reduced, 0 otherwise — so legacy
        constructors keep their exact semantics.
    """

    block_id: int
    extent: BlockExtent
    data: np.ndarray
    owner: int = 0
    home: int = 0
    reduced: bool = False
    score: Optional[float] = None
    field_name: str = "dbz"
    level: Optional[int] = None

    def __post_init__(self) -> None:
        if self.block_id < 0:
            raise ValueError(f"block_id must be >= 0, got {self.block_id}")
        if self.level is None:
            level = 2 if self.reduced else 0
        else:
            level = int(self.level)
            if level not in REDUCTION_LEVELS:
                raise ValueError(
                    f"level must be one of {REDUCTION_LEVELS}, got {self.level}"
                )
            if (level > 0) != bool(self.reduced):
                raise ValueError(
                    f"inconsistent block state: level={level} requires "
                    f"reduced={level > 0}, got reduced={self.reduced}"
                )
        object.__setattr__(self, "level", level)
        data = np.asarray(self.data)
        if data.ndim != 3:
            raise ValueError(f"block data must be 3-D, got shape {data.shape}")
        expected = level_shape(level, self.extent.shape)
        if tuple(data.shape) != expected:
            raise ValueError(
                f"level-{level} block data must have shape {expected} for "
                f"extent shape {self.extent.shape}, got {data.shape}"
            )
        object.__setattr__(self, "data", data)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (what redistribution actually transfers)."""
        return int(self.data.nbytes)

    @property
    def npoints_payload(self) -> int:
        """Number of points currently stored in the payload."""
        return int(self.data.size)

    @property
    def npoints_full(self) -> int:
        """Number of points the block covers in the domain (reduced or not)."""
        return self.extent.npoints

    def _clone_with(self, **updates: object) -> "Block":
        """Copy of the block with some fields replaced, skipping re-validation.

        Only safe for fields that don't participate in the payload/extent
        consistency checks (owner, score): the payload was validated when the
        block was built, and these copies happen once per block per pipeline
        step, which makes ``dataclasses.replace``'s re-validation the hot
        path's dominant cost.  The frozen-dataclass guard lives in
        ``__setattr__``, so filling the fresh instance's ``__dict__`` directly
        is both legal and the fastest copy Python offers.
        """
        clone = object.__new__(Block)
        clone.__dict__.update(self.__dict__)
        clone.__dict__.update(updates)
        return clone

    def with_owner(self, owner: int) -> "Block":
        """Return a copy of the block assigned to a different ``owner`` rank."""
        if owner < 0:
            raise ValueError(f"owner must be >= 0, got {owner}")
        return self._clone_with(owner=int(owner))

    def with_score(self, score: float) -> "Block":
        """Return a copy of the block with ``score`` attached."""
        return self._clone_with(score=float(score))

    def with_data(
        self, data: np.ndarray, reduced: bool, level: Optional[int] = None
    ) -> "Block":
        """Return a copy of the block carrying a new payload.

        Without an explicit ``level`` the ladder position is derived from
        ``reduced`` (2 when reduced, 0 otherwise), matching the pre-ladder
        semantics of this method.
        """
        if level is None:
            level = 2 if reduced else 0
        return replace(
            self, data=np.asarray(data), reduced=bool(reduced), level=int(level)
        )

    def with_corner_payload(self, corners: np.ndarray) -> "Block":
        """Return a reduced copy carrying 2×2×2 ``corners`` (fast path).

        Equivalent to ``with_data(corners, reduced=True)`` but skipping the
        dataclass ``replace``/re-validation machinery: the only constraint a
        reduced block carries is the (2, 2, 2) payload shape, checked here
        directly.  This is the clone the batched reduction step performs once
        per reduced block per iteration, where ``replace``'s overhead is the
        hot path's dominant cost (rows of a ``reduce_to_corners_batch``
        result are already validated by construction).
        """
        corners = np.asarray(corners)
        if corners.shape != (2, 2, 2):
            raise ValueError(
                f"reduced block data must have shape (2, 2, 2), got {corners.shape}"
            )
        return self._clone_with(data=corners, reduced=True, level=2)

    def with_level_payload(self, data: np.ndarray, level: int) -> "Block":
        """Return a copy carrying a ``level``-rung payload (fast path).

        The ladder generalisation of :meth:`with_corner_payload`: the payload
        shape is checked against :func:`level_shape` directly and the
        dataclass ``replace``/re-validation machinery is skipped — rows of a
        batched ``reduce_to_level`` pass are already valid by construction.
        """
        level = int(level)
        data = np.asarray(data)
        expected = level_shape(level, self.extent.shape)
        if tuple(data.shape) != expected:
            raise ValueError(
                f"level-{level} block data must have shape {expected} for "
                f"extent shape {self.extent.shape}, got {data.shape}"
            )
        return self._clone_with(data=data, reduced=level > 0, level=level)

    def value_range(self) -> Tuple[float, float]:
        """(min, max) of the payload values."""
        return (float(self.data.min()), float(self.data.max()))
