"""Block reduction to corner values and trilinear reconstruction.

The paper's reduction step (Section IV-C) keeps only the 8 corners of a 3-D
block (55×55×38 → 2×2×2 in their runs): this preserves the block's extent and
continuity with its neighbours, and lets visualization algorithms rebuild
interior points by trilinear interpolation — at the cost of blurring the
region, as visible in their Figure 1(b).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.grid.block import Block
from repro.utils.validation import ensure_3d


def reduce_to_corners(data: np.ndarray) -> np.ndarray:
    """Return the 2×2×2 array of corner values of a 3-D block.

    For axes of length 1 the single value is used for both corners, so the
    result always has shape ``(2, 2, 2)``.
    """
    data = ensure_3d(data, "block data")
    ix = [0, data.shape[0] - 1]
    iy = [0, data.shape[1] - 1]
    iz = [0, data.shape[2] - 1]
    return np.ascontiguousarray(data[np.ix_(ix, iy, iz)])


def _lerp_corners(c000, c001, c010, c011, c100, c101, c110, c111, u, v, w):
    """Shared trilinear interpolation arithmetic.

    The scalar (:func:`trilinear_sample`) and batched
    (:func:`reduction_error_batch`) paths both call this single
    implementation, so their per-element arithmetic — and therefore the
    TRILIN scores the execution engines compare bitwise — cannot drift
    apart.  Corner arguments may be scalars or arrays broadcastable against
    ``u``/``v``/``w``.
    """
    c00 = c000 * (1 - w) + c001 * w
    c01 = c010 * (1 - w) + c011 * w
    c10 = c100 * (1 - w) + c101 * w
    c11 = c110 * (1 - w) + c111 * w
    c0 = c00 * (1 - v) + c01 * v
    c1 = c10 * (1 - v) + c11 * v
    return c0 * (1 - u) + c1 * u


def trilinear_sample(corners: np.ndarray, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Trilinearly interpolate 2×2×2 ``corners`` at normalised coordinates.

    ``u``, ``v``, ``w`` are broadcastable arrays in [0, 1]; 0 maps to the low
    corner and 1 to the high corner along each axis.
    """
    corners = np.asarray(corners, dtype=np.float64)
    if corners.shape != (2, 2, 2):
        raise ValueError(f"corners must have shape (2, 2, 2), got {corners.shape}")
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    return _lerp_corners(
        corners[0, 0, 0], corners[0, 0, 1],
        corners[0, 1, 0], corners[0, 1, 1],
        corners[1, 0, 0], corners[1, 0, 1],
        corners[1, 1, 0], corners[1, 1, 1],
        u, v, w,
    )


def expand_from_corners(corners: np.ndarray, shape: Tuple[int, int, int]) -> np.ndarray:
    """Rebuild a full block of ``shape`` by trilinear interpolation of corners.

    This is exactly the reconstruction a visualization algorithm performs when
    rendering a reduced block, and it is also the reference used by the TRILIN
    scoring metric (interpolation error of the reduced representation).
    """
    nx, ny, nz = (int(s) for s in shape)
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError(f"invalid target shape: {shape}")
    u = np.linspace(0.0, 1.0, nx) if nx > 1 else np.zeros(1)
    v = np.linspace(0.0, 1.0, ny) if ny > 1 else np.zeros(1)
    w = np.linspace(0.0, 1.0, nz) if nz > 1 else np.zeros(1)
    uu, vv, ww = np.meshgrid(u, v, w, indexing="ij")
    return trilinear_sample(corners, uu, vv, ww)


def reduce_block(block: Block) -> Block:
    """Return a reduced copy of ``block`` (no-op if already reduced)."""
    if block.reduced:
        return block
    return block.with_data(reduce_to_corners(block.data), reduced=True)


def reconstruct_block(block: Block) -> np.ndarray:
    """Return a full-resolution array for ``block``.

    Full blocks return their payload unchanged; reduced blocks are expanded by
    trilinear interpolation over their original extent shape.
    """
    if not block.reduced:
        return np.asarray(block.data)
    return expand_from_corners(np.asarray(block.data, dtype=np.float64), block.extent.shape)


def reduce_to_corners_batch(data: np.ndarray) -> np.ndarray:
    """Corner values of a stacked ``(nblocks, sx, sy, sz)`` batch.

    Vectorised counterpart of :func:`reduce_to_corners`; returns an array of
    shape ``(nblocks, 2, 2, 2)`` with identical values to reducing the blocks
    one at a time.
    """
    arr = np.asarray(data)
    if arr.ndim != 4:
        raise ValueError(f"batch data must be 4-D, got shape {arr.shape}")
    ix = np.array([0, arr.shape[1] - 1])
    iy = np.array([0, arr.shape[2] - 1])
    iz = np.array([0, arr.shape[3] - 1])
    return np.ascontiguousarray(
        arr[:, ix[:, None, None], iy[None, :, None], iz[None, None, :]]
    )


def reduction_error_batch(data: np.ndarray) -> np.ndarray:
    """Per-block corner-reduction MSE of a stacked ``(nblocks, ...)`` batch.

    Vectorised counterpart of :func:`reduction_error`: the trilinear weights
    are shared across the batch and applied with the same per-element
    arithmetic as :func:`trilinear_sample`, so every entry is bitwise equal
    to ``reduction_error(data[i])``.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 4:
        raise ValueError(f"batch data must be 4-D, got shape {arr.shape}")
    n, nx, ny, nz = arr.shape
    corners = reduce_to_corners_batch(arr)
    u = np.linspace(0.0, 1.0, nx) if nx > 1 else np.zeros(1)
    v = np.linspace(0.0, 1.0, ny) if ny > 1 else np.zeros(1)
    w = np.linspace(0.0, 1.0, nz) if nz > 1 else np.zeros(1)
    uu, vv, ww = np.meshgrid(u, v, w, indexing="ij")
    c = corners.reshape(n, 8)[:, :, None, None, None]
    rebuilt = _lerp_corners(*(c[:, i] for i in range(8)), uu, vv, ww)
    diff = (arr - rebuilt) ** 2
    return np.mean(diff.reshape(n, -1), axis=1)


def reduction_error(data: np.ndarray) -> float:
    """Mean-square error committed by corner reduction of ``data``.

    This is the quantity the TRILIN metric scores: blocks whose content is far
    from trilinear (high internal variability) get a large error and are
    therefore preserved.
    """
    data = np.asarray(ensure_3d(data, "block data"), dtype=np.float64)
    rebuilt = expand_from_corners(reduce_to_corners(data), data.shape)
    return float(np.mean((data - rebuilt) ** 2))
