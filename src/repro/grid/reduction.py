"""Block reduction (corner values and the mipmap ladder) and reconstruction.

The paper's reduction step (Section IV-C) keeps only the 8 corners of a 3-D
block (55×55×38 → 2×2×2 in their runs): this preserves the block's extent and
continuity with its neighbours, and lets visualization algorithms rebuild
interior points by trilinear interpolation — at the cost of blurring the
region, as visible in their Figure 1(b).

On top of that all-or-nothing jump this module provides the *reduction
ladder*: level 0 is the identity, level 1 keeps every second point plus the
high edge along each axis (:func:`~repro.grid.block.axis_sample_indices` —
roughly a 1/8 payload, with the 8 corners preserved exactly so the
neighbour-continuity guarantee of the corner reduction carries over), and
level 2 is the existing corner reduction.  :func:`expand_from_level` rebuilds
any level by piecewise-trilinear interpolation between the retained samples;
retained points — corners included — are reproduced exactly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.grid.block import Block, axis_sample_indices, level_shape
from repro.utils.validation import ensure_3d


def reduce_to_corners(data: np.ndarray) -> np.ndarray:
    """Return the 2×2×2 array of corner values of a 3-D block.

    For axes of length 1 the single value is used for both corners, so the
    result always has shape ``(2, 2, 2)``.
    """
    data = ensure_3d(data, "block data")
    ix = [0, data.shape[0] - 1]
    iy = [0, data.shape[1] - 1]
    iz = [0, data.shape[2] - 1]
    return np.ascontiguousarray(data[np.ix_(ix, iy, iz)])


def _lerp_corners(c000, c001, c010, c011, c100, c101, c110, c111, u, v, w):
    """Shared trilinear interpolation arithmetic.

    The scalar (:func:`trilinear_sample`) and batched
    (:func:`reduction_error_batch`) paths both call this single
    implementation, so their per-element arithmetic — and therefore the
    TRILIN scores the execution engines compare bitwise — cannot drift
    apart.  Corner arguments may be scalars or arrays broadcastable against
    ``u``/``v``/``w``.
    """
    c00 = c000 * (1 - w) + c001 * w
    c01 = c010 * (1 - w) + c011 * w
    c10 = c100 * (1 - w) + c101 * w
    c11 = c110 * (1 - w) + c111 * w
    c0 = c00 * (1 - v) + c01 * v
    c1 = c10 * (1 - v) + c11 * v
    return c0 * (1 - u) + c1 * u


def trilinear_sample(corners: np.ndarray, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Trilinearly interpolate 2×2×2 ``corners`` at normalised coordinates.

    ``u``, ``v``, ``w`` are broadcastable arrays in [0, 1]; 0 maps to the low
    corner and 1 to the high corner along each axis.
    """
    corners = np.asarray(corners, dtype=np.float64)
    if corners.shape != (2, 2, 2):
        raise ValueError(f"corners must have shape (2, 2, 2), got {corners.shape}")
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    return _lerp_corners(
        corners[0, 0, 0], corners[0, 0, 1],
        corners[0, 1, 0], corners[0, 1, 1],
        corners[1, 0, 0], corners[1, 0, 1],
        corners[1, 1, 0], corners[1, 1, 1],
        u, v, w,
    )


def expand_from_corners(corners: np.ndarray, shape: Tuple[int, int, int]) -> np.ndarray:
    """Rebuild a full block of ``shape`` by trilinear interpolation of corners.

    This is exactly the reconstruction a visualization algorithm performs when
    rendering a reduced block, and it is also the reference used by the TRILIN
    scoring metric (interpolation error of the reduced representation).
    """
    nx, ny, nz = (int(s) for s in shape)
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError(f"invalid target shape: {shape}")
    u = np.linspace(0.0, 1.0, nx) if nx > 1 else np.zeros(1)
    v = np.linspace(0.0, 1.0, ny) if ny > 1 else np.zeros(1)
    w = np.linspace(0.0, 1.0, nz) if nz > 1 else np.zeros(1)
    uu, vv, ww = np.meshgrid(u, v, w, indexing="ij")
    return trilinear_sample(corners, uu, vv, ww)


def reduce_to_level(data: np.ndarray, level: int) -> np.ndarray:
    """Reduce a full-resolution 3-D block payload to ladder ``level``.

    Level 0 returns the payload unchanged, level 1 gathers the strided
    sample grid (:func:`~repro.grid.block.axis_sample_indices` per axis, a
    pure fancy-index copy — no arithmetic, so values are bitwise those of the
    original), and level 2 delegates to :func:`reduce_to_corners`.  Because
    the level-1 sample grid contains both edges of every axis, taking the
    corners of a level-1 payload yields bitwise the same 2×2×2 array as
    taking them from the full payload — which is what lets the reduction
    step deepen a level-1 block to level 2 without going back to the source.
    """
    if level == 0:
        return np.asarray(data)
    if level == 2:
        return reduce_to_corners(data)
    if level != 1:
        raise ValueError(f"level must be 0, 1 or 2, got {level}")
    data = ensure_3d(data, "block data")
    ix, iy, iz = (axis_sample_indices(n) for n in data.shape)
    return np.ascontiguousarray(data[np.ix_(ix, iy, iz)])


def _level1_axis_weights(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-point segment indices and fractions for one level-1 axis.

    Returns ``(low, high, u)`` arrays of length ``n``: point ``t`` is rebuilt
    as ``payload[low[t]] * (1 - u[t]) + payload[high[t]] * u[t]``.  Retained
    sample points land exactly on ``u = 0`` (or ``u = 1`` for the final
    sample), so the interpolation reproduces them bitwise.
    """
    samples = np.asarray(axis_sample_indices(n), dtype=np.int64)
    if samples.size == 1:
        return np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.int64), np.zeros(n)
    t = np.arange(n, dtype=np.int64)
    low = np.clip(np.searchsorted(samples, t, side="right") - 1, 0, samples.size - 2)
    high = low + 1
    u = (t - samples[low]) / (samples[high] - samples[low])
    return low, high, u


def _expand_level1(payload: np.ndarray, shape: Tuple[int, int, int]) -> np.ndarray:
    """Rebuild a full block of ``shape`` from its level-1 sample grid.

    Piecewise-trilinear interpolation between adjacent retained samples,
    sharing :func:`_lerp_corners`'s per-element arithmetic with the corner
    path.  ``payload`` may carry a leading batch axis — the per-axis weights
    are broadcast over it, so the batched result is bitwise equal to
    expanding the blocks one at a time.
    """
    nx, ny, nz = (int(s) for s in shape)
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError(f"invalid target shape: {shape}")
    payload = np.asarray(payload, dtype=np.float64)
    batched = payload.ndim == 4
    if not batched:
        payload = payload[None]
    expected = tuple(len(axis_sample_indices(n)) for n in (nx, ny, nz))
    if tuple(payload.shape[1:]) != expected:
        raise ValueError(
            f"level-1 payload for shape {tuple(shape)} must have shape "
            f"{expected}, got {tuple(payload.shape[1:])}"
        )
    lx, hx, u = _level1_axis_weights(nx)
    ly, hy, v = _level1_axis_weights(ny)
    lz, hz, w = _level1_axis_weights(nz)
    uu = u[:, None, None]
    vv = v[None, :, None]
    ww = w[None, None, :]

    def gather(ax, ay, az):
        return payload[:, ax[:, None, None], ay[None, :, None], az[None, None, :]]

    rebuilt = _lerp_corners(
        gather(lx, ly, lz), gather(lx, ly, hz),
        gather(lx, hy, lz), gather(lx, hy, hz),
        gather(hx, ly, lz), gather(hx, ly, hz),
        gather(hx, hy, lz), gather(hx, hy, hz),
        uu, vv, ww,
    )
    return rebuilt if batched else rebuilt[0]


def expand_from_level(
    payload: np.ndarray, level: int, shape: Tuple[int, int, int]
) -> np.ndarray:
    """Rebuild a full block of ``shape`` from a ladder-``level`` payload.

    Level 0 returns the payload unchanged, level 1 interpolates piecewise
    between the strided samples (:func:`_expand_level1`), level 2 delegates
    to :func:`expand_from_corners`.  Every retained sample point — corners
    included — is reproduced exactly, which is the ladder's continuity
    guarantee: adjacent blocks at different levels still agree on their
    shared faces' retained points.
    """
    if level == 0:
        return np.asarray(payload)
    if level == 1:
        return _expand_level1(payload, shape)
    if level == 2:
        return expand_from_corners(payload, shape)
    raise ValueError(f"level must be 0, 1 or 2, got {level}")


def reduce_block(block: Block, level: int = 2) -> Block:
    """Return a copy of ``block`` reduced to ladder ``level``.

    A no-op when the block already sits at or beyond the requested level —
    levels only ever deepen.  A level-1 block deepened to level 2 keeps
    bitwise the corner values a direct full→corners reduction would produce
    (the level-1 grid retains the corners exactly).
    """
    if block.level >= level:
        return block
    return block.with_level_payload(reduce_to_level(block.data, level), level)


def reconstruct_block(block: Block) -> np.ndarray:
    """Return a full-resolution array for ``block``.

    Full blocks return their payload unchanged; reduced blocks are expanded
    by (piecewise-)trilinear interpolation over their original extent shape,
    whatever ladder level they sit on.
    """
    if block.level == 0:
        return np.asarray(block.data)
    return expand_from_level(
        np.asarray(block.data, dtype=np.float64), block.level, block.extent.shape
    )


def reduce_to_corners_batch(data: np.ndarray) -> np.ndarray:
    """Corner values of a stacked ``(nblocks, sx, sy, sz)`` batch.

    Vectorised counterpart of :func:`reduce_to_corners`; returns an array of
    shape ``(nblocks, 2, 2, 2)`` with identical values to reducing the blocks
    one at a time.
    """
    arr = np.asarray(data)
    if arr.ndim != 4:
        raise ValueError(f"batch data must be 4-D, got shape {arr.shape}")
    ix = np.array([0, arr.shape[1] - 1])
    iy = np.array([0, arr.shape[2] - 1])
    iz = np.array([0, arr.shape[3] - 1])
    return np.ascontiguousarray(
        arr[:, ix[:, None, None], iy[None, :, None], iz[None, None, :]]
    )


def reduce_to_level_batch(data: np.ndarray, level: int) -> np.ndarray:
    """Ladder reduction of a stacked ``(nblocks, sx, sy, sz)`` batch.

    Vectorised counterpart of :func:`reduce_to_level` — one fancy-index
    gather for the whole group, values bitwise those of reducing the blocks
    one at a time.  Level 2 delegates to :func:`reduce_to_corners_batch`.
    """
    if level == 0:
        return np.asarray(data)
    if level == 2:
        return reduce_to_corners_batch(data)
    if level != 1:
        raise ValueError(f"level must be 0, 1 or 2, got {level}")
    arr = np.asarray(data)
    if arr.ndim != 4:
        raise ValueError(f"batch data must be 4-D, got shape {arr.shape}")
    ix, iy, iz = (
        np.asarray(axis_sample_indices(n), dtype=np.int64) for n in arr.shape[1:]
    )
    return np.ascontiguousarray(
        arr[:, ix[:, None, None], iy[None, :, None], iz[None, None, :]]
    )


def expand_from_level_batch(
    payload: np.ndarray, level: int, shape: Tuple[int, int, int]
) -> np.ndarray:
    """Rebuild a stacked batch of equally-shaped blocks from ladder payloads.

    Vectorised counterpart of :func:`expand_from_level`: the per-axis
    interpolation weights are shared across the batch, and the per-element
    arithmetic is :func:`_lerp_corners`'s, so row ``i`` is bitwise equal to
    ``expand_from_level(payload[i], level, shape)``.
    """
    arr = np.asarray(payload)
    if arr.ndim != 4:
        raise ValueError(f"batch payload must be 4-D, got shape {arr.shape}")
    if level == 0:
        return arr
    if level == 1:
        return _expand_level1(arr, shape)
    if level != 2:
        raise ValueError(f"level must be 0, 1 or 2, got {level}")
    n = arr.shape[0]
    nx, ny, nz = (int(s) for s in shape)
    arr = np.asarray(arr, dtype=np.float64)
    u = np.linspace(0.0, 1.0, nx) if nx > 1 else np.zeros(1)
    v = np.linspace(0.0, 1.0, ny) if ny > 1 else np.zeros(1)
    w = np.linspace(0.0, 1.0, nz) if nz > 1 else np.zeros(1)
    uu, vv, ww = np.meshgrid(u, v, w, indexing="ij")
    c = arr.reshape(n, 8)[:, :, None, None, None]
    return _lerp_corners(*(c[:, i] for i in range(8)), uu, vv, ww)


def reduction_error_batch(data: np.ndarray, level: int = 2) -> np.ndarray:
    """Per-block reduction MSE of a stacked ``(nblocks, ...)`` batch.

    Vectorised counterpart of :func:`reduction_error`: the interpolation
    weights are shared across the batch and applied with the same
    per-element arithmetic as :func:`trilinear_sample`, so every entry is
    bitwise equal to ``reduction_error(data[i], level)``.  The default
    ``level=2`` scores the paper's corner reduction (what the TRILIN metric
    uses); ``level=1`` scores the strided downsample.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 4:
        raise ValueError(f"batch data must be 4-D, got shape {arr.shape}")
    n, nx, ny, nz = arr.shape
    if level == 0:
        return np.zeros(n)
    if level == 1:
        rebuilt = _expand_level1(reduce_to_level_batch(arr, 1), (nx, ny, nz))
        diff = (arr - rebuilt) ** 2
        return np.mean(diff.reshape(n, -1), axis=1)
    if level != 2:
        raise ValueError(f"level must be 0, 1 or 2, got {level}")
    corners = reduce_to_corners_batch(arr)
    u = np.linspace(0.0, 1.0, nx) if nx > 1 else np.zeros(1)
    v = np.linspace(0.0, 1.0, ny) if ny > 1 else np.zeros(1)
    w = np.linspace(0.0, 1.0, nz) if nz > 1 else np.zeros(1)
    uu, vv, ww = np.meshgrid(u, v, w, indexing="ij")
    c = corners.reshape(n, 8)[:, :, None, None, None]
    rebuilt = _lerp_corners(*(c[:, i] for i in range(8)), uu, vv, ww)
    diff = (arr - rebuilt) ** 2
    return np.mean(diff.reshape(n, -1), axis=1)


def reduction_error(data: np.ndarray, level: int = 2) -> float:
    """Mean-square error committed by reducing ``data`` to ladder ``level``.

    At the default ``level=2`` this is the quantity the TRILIN metric
    scores: blocks whose content is far from trilinear (high internal
    variability) get a large error and are therefore preserved.  ``level=1``
    gives the (never larger) error of the strided downsample, the number the
    quality-vs-cost benchmark gate compares against the corner error.
    """
    data = np.asarray(ensure_3d(data, "block data"), dtype=np.float64)
    if level == 0:
        return 0.0
    if level == 1:
        rebuilt = _expand_level1(reduce_to_level(data, 1), data.shape)
    elif level == 2:
        rebuilt = expand_from_corners(reduce_to_corners(data), data.shape)
    else:
        raise ValueError(f"level must be 0, 1 or 2, got {level}")
    return float(np.mean((data - rebuilt) ** 2))
