"""Cartesian domain decomposition into subdomains and blocks.

CM1 decomposes its fixed rectilinear domain regularly across processes,
independently of content (Section II-A).  Each process's subdomain is further
subdivided into a constant number of equally-sized blocks; those blocks are
the unit of scoring, reduction, and redistribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.block import Block, BlockExtent


def factorize_ranks(nranks: int, ndims: int = 3) -> Tuple[int, ...]:
    """Split ``nranks`` into ``ndims`` factors as close to each other as possible.

    This mirrors ``MPI_Dims_create``: the product of the returned factors is
    exactly ``nranks`` and the factors are non-increasing.

    Examples
    --------
    >>> factorize_ranks(64)
    (4, 4, 4)
    >>> factorize_ranks(400)
    (10, 8, 5)
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if ndims < 1:
        raise ValueError(f"ndims must be >= 1, got {ndims}")
    dims = [1] * ndims
    remaining = nranks
    # Greedy assignment of prime factors (largest first) to the smallest dim.
    primes: List[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            primes.append(f)
            n //= f
        f += 1
    if n > 1:
        primes.append(n)
    for p in sorted(primes, reverse=True):
        smallest = int(np.argmin(dims))
        dims[smallest] *= p
    return tuple(sorted(dims, reverse=True))


def split_axis(npoints: int, nparts: int) -> List[Tuple[int, int]]:
    """Split ``npoints`` indices into ``nparts`` contiguous [start, stop) ranges.

    The first ``npoints % nparts`` parts get one extra point, mirroring the
    standard block distribution used by regular domain decompositions.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if npoints < nparts:
        raise ValueError(f"cannot split {npoints} points into {nparts} parts")
    base = npoints // nparts
    extra = npoints % nparts
    ranges = []
    start = 0
    for i in range(nparts):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class CartesianDecomposition:
    """Regular decomposition of a global domain into subdomains and blocks.

    Parameters
    ----------
    global_shape:
        Number of grid points of the whole domain along x, y, z.
    nranks:
        Number of processes.
    blocks_per_subdomain:
        Number of blocks each subdomain is divided into along x, y, z.
        Constant across processes, as required by the paper.
    rank_dims:
        Optional explicit process-grid dimensions (product must equal
        ``nranks``).  CM1 decomposes its domain horizontally only, so the
        experiment drivers pass e.g. ``(8, 8, 1)`` for 64 ranks; when omitted
        the ranks are factorised over all three axes.
    """

    global_shape: Tuple[int, int, int]
    nranks: int
    blocks_per_subdomain: Tuple[int, int, int] = (2, 2, 1)
    rank_dims_override: Optional[Tuple[int, int, int]] = None

    def __post_init__(self) -> None:
        gs = tuple(int(v) for v in self.global_shape)
        bps = tuple(int(v) for v in self.blocks_per_subdomain)
        if len(gs) != 3 or any(v < 1 for v in gs):
            raise ValueError(f"invalid global_shape: {self.global_shape}")
        if len(bps) != 3 or any(v < 1 for v in bps):
            raise ValueError(f"invalid blocks_per_subdomain: {self.blocks_per_subdomain}")
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        object.__setattr__(self, "global_shape", gs)
        object.__setattr__(self, "blocks_per_subdomain", bps)
        if self.rank_dims_override is not None:
            # Validate the tuple's arity before converting or multiplying, so
            # a 2-tuple (or a bare int) fails with a clear message instead of
            # a TypeError or a misleading product mismatch.
            try:
                dims = tuple(int(v) for v in self.rank_dims_override)
            except TypeError:
                raise ValueError(
                    f"invalid rank_dims_override: {self.rank_dims_override!r} "
                    f"(expected a 3-tuple of positive ints)"
                ) from None
            if len(dims) != 3 or any(v < 1 for v in dims):
                raise ValueError(f"invalid rank_dims_override: {self.rank_dims_override}")
            if dims[0] * dims[1] * dims[2] != self.nranks:
                raise ValueError(
                    f"rank_dims_override {dims} does not multiply to nranks={self.nranks}"
                )
            object.__setattr__(self, "rank_dims_override", dims)
            object.__setattr__(self, "_rank_dims", dims)
        else:
            object.__setattr__(self, "_rank_dims", factorize_ranks(self.nranks))
        for axis in range(3):
            nparts = self._rank_dims[axis] * bps[axis]
            if gs[axis] < nparts:
                raise ValueError(
                    f"axis {axis}: {gs[axis]} points cannot be split into "
                    f"{nparts} block columns"
                )

    # -- rank-level layout -------------------------------------------------

    @property
    def rank_dims(self) -> Tuple[int, int, int]:
        """Number of subdomains along each axis (product == nranks)."""
        return self._rank_dims  # type: ignore[attr-defined]

    def rank_coords(self, rank: int) -> Tuple[int, int, int]:
        """Cartesian coordinates of ``rank`` in the process grid (row-major)."""
        self._check_rank(rank)
        px, py, pz = self.rank_dims
        return (rank // (py * pz), (rank // pz) % py, rank % pz)

    def rank_from_coords(self, coords: Tuple[int, int, int]) -> int:
        """Inverse of :meth:`rank_coords`."""
        px, py, pz = self.rank_dims
        cx, cy, cz = coords
        if not (0 <= cx < px and 0 <= cy < py and 0 <= cz < pz):
            raise ValueError(f"coords {coords} out of process grid {self.rank_dims}")
        return cx * py * pz + cy * pz + cz

    def subdomain_extent(self, rank: int) -> BlockExtent:
        """Global index extent of the subdomain owned by ``rank``."""
        coords = self.rank_coords(rank)
        starts, stops = [], []
        for axis in range(3):
            ranges = split_axis(self.global_shape[axis], self.rank_dims[axis])
            lo, hi = ranges[coords[axis]]
            starts.append(lo)
            stops.append(hi)
        return BlockExtent(tuple(starts), tuple(stops))

    # -- block-level layout --------------------------------------------------

    @property
    def blocks_per_rank(self) -> int:
        """Number of blocks each rank owns initially."""
        bx, by, bz = self.blocks_per_subdomain
        return bx * by * bz

    @property
    def nblocks(self) -> int:
        """Total number of blocks in the domain."""
        return self.blocks_per_rank * self.nranks

    def block_extents(self, rank: int) -> List[BlockExtent]:
        """Extents of the blocks inside ``rank``'s subdomain (local ordering)."""
        sub = self.subdomain_extent(rank)
        bx, by, bz = self.blocks_per_subdomain
        x_ranges = split_axis(sub.shape[0], bx)
        y_ranges = split_axis(sub.shape[1], by)
        z_ranges = split_axis(sub.shape[2], bz)
        extents = []
        for xr in x_ranges:
            for yr in y_ranges:
                for zr in z_ranges:
                    extents.append(
                        BlockExtent(
                            (sub.start[0] + xr[0], sub.start[1] + yr[0], sub.start[2] + zr[0]),
                            (sub.start[0] + xr[1], sub.start[1] + yr[1], sub.start[2] + zr[1]),
                        )
                    )
        return extents

    def block_ids(self, rank: int) -> List[int]:
        """Global ids of the blocks initially owned by ``rank``."""
        self._check_rank(rank)
        base = rank * self.blocks_per_rank
        return list(range(base, base + self.blocks_per_rank))

    def owner_of_block(self, block_id: int) -> int:
        """Rank that initially owns ``block_id``."""
        if not (0 <= block_id < self.nblocks):
            raise ValueError(f"block_id {block_id} out of range [0, {self.nblocks})")
        return block_id // self.blocks_per_rank

    def block_extent(self, block_id: int) -> BlockExtent:
        """Extent of ``block_id`` in global index space."""
        rank = self.owner_of_block(block_id)
        local = block_id - rank * self.blocks_per_rank
        return self.block_extents(rank)[local]

    def all_block_extents(self) -> Dict[int, BlockExtent]:
        """Mapping block id -> extent for the whole domain."""
        out: Dict[int, BlockExtent] = {}
        for rank in range(self.nranks):
            for bid, ext in zip(self.block_ids(rank), self.block_extents(rank)):
                out[bid] = ext
        return out

    # -- data extraction -------------------------------------------------------

    def extract_blocks(
        self, rank: int, global_field: np.ndarray, field_name: str = "dbz"
    ) -> List[Block]:
        """Cut ``rank``'s blocks out of a full-domain field array."""
        field = np.asarray(global_field)
        if tuple(field.shape) != self.global_shape:
            raise ValueError(
                f"field shape {field.shape} does not match domain {self.global_shape}"
            )
        blocks = []
        for bid, ext in zip(self.block_ids(rank), self.block_extents(rank)):
            blocks.append(
                Block(
                    block_id=bid,
                    extent=ext,
                    data=np.ascontiguousarray(field[ext.slices]),
                    owner=rank,
                    home=rank,
                    field_name=field_name,
                )
            )
        return blocks

    def extract_subdomain(self, rank: int, global_field: np.ndarray) -> np.ndarray:
        """Return a copy of ``rank``'s subdomain from a full-domain field array."""
        field = np.asarray(global_field)
        if tuple(field.shape) != self.global_shape:
            raise ValueError(
                f"field shape {field.shape} does not match domain {self.global_shape}"
            )
        return np.ascontiguousarray(field[self.subdomain_extent(rank).slices])

    # -- helpers ---------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")

    def validate_coverage(self) -> bool:
        """Check that blocks tile the domain exactly (no gaps, no overlaps).

        Intended for tests; O(nblocks^2) in the worst case for the overlap
        check so only use on small decompositions.
        """
        extents = list(self.all_block_extents().values())
        total = sum(e.npoints for e in extents)
        nx, ny, nz = self.global_shape
        if total != nx * ny * nz:
            return False
        for i, a in enumerate(extents):
            for b in extents[i + 1 :]:
                if a.overlaps(b):
                    return False
        return True
