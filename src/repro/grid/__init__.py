"""Rectilinear grids, domain decomposition, and data blocks.

The vocabulary follows Section IV-A of the paper:

* the **domain** is the full 3-D array produced by the simulation at one
  iteration;
* a **subdomain** is the subarray handled by one process;
* a **block** is a subarray of a subdomain.  The number of blocks per
  subdomain and the size of every block are constant across processes.

:mod:`repro.grid.batch` adds :class:`BlockBatch`, a structure-of-arrays view
over many equally-shaped blocks that the vectorized execution engine scores
in bulk (lossless ``from_blocks``/``to_blocks`` round-tripping).
"""

from repro.grid.rectilinear import RectilinearGrid
from repro.grid.block import (
    Block,
    BlockExtent,
    REDUCTION_LEVELS,
    axis_sample_indices,
    level_shape,
)
from repro.grid.batch import BlockBatch, group_positions_by_shape, partition_by_shape
from repro.grid.shm import (
    SharedBatchError,
    SharedBlockBatch,
    ShmBatchHandle,
    live_owned_segments,
)
from repro.grid.domain import Domain, Subdomain
from repro.grid.decomposition import (
    CartesianDecomposition,
    factorize_ranks,
    split_axis,
)
from repro.grid.reduction import (
    reduce_to_corners,
    reduce_to_corners_batch,
    reduce_to_level,
    reduce_to_level_batch,
    reduction_error_batch,
    expand_from_corners,
    expand_from_level,
    expand_from_level_batch,
    reduce_block,
    trilinear_sample,
)

__all__ = [
    "RectilinearGrid",
    "Block",
    "BlockExtent",
    "REDUCTION_LEVELS",
    "axis_sample_indices",
    "level_shape",
    "BlockBatch",
    "group_positions_by_shape",
    "partition_by_shape",
    "SharedBatchError",
    "SharedBlockBatch",
    "ShmBatchHandle",
    "live_owned_segments",
    "Domain",
    "Subdomain",
    "CartesianDecomposition",
    "factorize_ranks",
    "split_axis",
    "reduce_to_corners",
    "reduce_to_corners_batch",
    "reduce_to_level",
    "reduce_to_level_batch",
    "reduction_error_batch",
    "expand_from_corners",
    "expand_from_level",
    "expand_from_level_batch",
    "reduce_block",
    "trilinear_sample",
]
