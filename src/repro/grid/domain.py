"""Domain and subdomain containers.

A :class:`Domain` bundles the rectilinear grid geometry with one or more named
full-domain field arrays (the way a single CM1 iteration looks once written
out).  A :class:`Subdomain` is the view of one process: its extent, its grid
slice, and its share of the fields, divided into blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.grid.block import Block, BlockExtent, axis_sample_indices
from repro.grid.decomposition import CartesianDecomposition
from repro.grid.rectilinear import RectilinearGrid


@dataclass
class Domain:
    """The full 3-D domain produced by the simulation at one iteration.

    Attributes
    ----------
    grid:
        Rectilinear grid geometry for the whole domain.
    fields:
        Mapping field name -> full-domain array of shape ``grid.shape``.
    iteration:
        Simulation iteration number this snapshot corresponds to.
    """

    grid: RectilinearGrid
    fields: Dict[str, np.ndarray] = field(default_factory=dict)
    iteration: int = 0

    def __post_init__(self) -> None:
        for name, arr in list(self.fields.items()):
            self.fields[name] = self._validate_field(name, arr)

    def _validate_field(self, name: str, arr: np.ndarray) -> np.ndarray:
        arr = np.asarray(arr)
        if tuple(arr.shape) != self.grid.shape:
            raise ValueError(
                f"field {name!r} has shape {arr.shape}, expected {self.grid.shape}"
            )
        return arr

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Shape of the domain (number of grid points per axis)."""
        return self.grid.shape

    def add_field(self, name: str, values: np.ndarray) -> None:
        """Add (or replace) a named field array."""
        self.fields[name] = self._validate_field(name, values)

    def field_names(self) -> List[str]:
        """Names of the fields stored in this domain snapshot."""
        return list(self.fields.keys())

    def get_field(self, name: str) -> np.ndarray:
        """Return the array for field ``name`` (raises ``KeyError`` if absent)."""
        return self.fields[name]

    def decompose(
        self,
        nranks: int,
        blocks_per_subdomain: Tuple[int, int, int] = (2, 2, 1),
    ) -> "CartesianDecomposition":
        """Build the regular decomposition of this domain over ``nranks``."""
        return CartesianDecomposition(self.shape, nranks, blocks_per_subdomain)

    def subdomain(
        self,
        decomposition: CartesianDecomposition,
        rank: int,
        field_name: str = "dbz",
    ) -> "Subdomain":
        """Return rank ``rank``'s subdomain view of field ``field_name``."""
        if tuple(decomposition.global_shape) != self.shape:
            raise ValueError(
                f"decomposition shape {decomposition.global_shape} does not match "
                f"domain shape {self.shape}"
            )
        extent = decomposition.subdomain_extent(rank)
        blocks = decomposition.extract_blocks(rank, self.get_field(field_name), field_name)
        return Subdomain(
            rank=rank,
            extent=extent,
            grid=self.grid.subgrid(extent.slices),
            blocks=blocks,
            field_name=field_name,
            iteration=self.iteration,
        )


@dataclass
class Subdomain:
    """The portion of the domain handled by one process.

    Attributes
    ----------
    rank:
        Owning process rank.
    extent:
        Global index extent of the subdomain.
    grid:
        Grid geometry restricted to the subdomain.
    blocks:
        Blocks the subdomain is divided into (initially all full).
    field_name:
        Name of the field carried by the blocks.
    iteration:
        Simulation iteration number.
    """

    rank: int
    extent: BlockExtent
    grid: RectilinearGrid
    blocks: List[Block]
    field_name: str = "dbz"
    iteration: int = 0

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Shape of the subdomain in grid points."""
        return self.extent.shape

    @property
    def nblocks(self) -> int:
        """Number of blocks in the subdomain."""
        return len(self.blocks)

    def block_by_id(self, block_id: int) -> Optional[Block]:
        """Return the block with ``block_id`` if present, else ``None``."""
        for blk in self.blocks:
            if blk.block_id == block_id:
                return blk
        return None

    def assemble(self, fill_value: float = 0.0) -> np.ndarray:
        """Reassemble the subdomain array from its (full) blocks.

        Reduced blocks contribute only their retained sample values (8
        corners at level 2, every strided sample at level 1); the remaining
        interior points take ``fill_value``.  Mostly useful in tests.
        """
        out = np.full(self.shape, fill_value, dtype=np.float64)
        off = self.extent.start
        for blk in self.blocks:
            sl = tuple(
                slice(lo - o, hi - o)
                for lo, hi, o in zip(blk.extent.start, blk.extent.stop, off)
            )
            if not blk.reduced:
                out[sl] = blk.data
            elif blk.level == 1:
                axes = tuple(
                    np.asarray(axis_sample_indices(n), dtype=np.intp) + (lo - o)
                    for n, lo, o in zip(blk.extent.shape, blk.extent.start, off)
                )
                out[np.ix_(*axes)] = blk.data
            else:
                for corner, (ci, cj, ck) in zip(
                    blk.data.reshape(-1), blk.extent.corner_indices()
                ):
                    out[ci - off[0], cj - off[1], ck - off[2]] = corner
        return out
