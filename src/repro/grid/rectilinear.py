"""Rectilinear grid geometry.

CM1 simulates its phenomena on a fixed 3-D *rectilinear* grid: axis
coordinates are monotonically increasing but not necessarily uniformly spaced
(the paper notes that border blocks look longer in the scoremaps because the
grid is stretched near the domain boundary).  This module provides that
geometry: per-axis coordinate arrays plus helpers to build uniform or
boundary-stretched axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def uniform_axis(n: int, extent: float, origin: float = 0.0) -> np.ndarray:
    """Return ``n`` uniformly spaced coordinates spanning ``extent`` from ``origin``."""
    if n < 1:
        raise ValueError(f"axis must have at least 1 point, got {n}")
    if extent <= 0:
        raise ValueError(f"extent must be > 0, got {extent}")
    return origin + np.linspace(0.0, extent, n)


def stretched_axis(
    n: int,
    inner_extent: float,
    stretch_factor: float = 3.0,
    stretch_fraction: float = 0.15,
    origin: float = 0.0,
) -> np.ndarray:
    """Return a CM1-style stretched axis.

    The central ``1 - 2*stretch_fraction`` of the points are uniformly spaced
    over ``inner_extent``; the outer points on each side use geometrically
    growing spacing up to ``stretch_factor`` times the inner spacing.  This
    mimics CM1's practice of using a fine uniform mesh around the storm and a
    coarser mesh toward the lateral boundaries.
    """
    if n < 4:
        raise ValueError(f"stretched axis needs at least 4 points, got {n}")
    if not (0.0 <= stretch_fraction < 0.5):
        raise ValueError(f"stretch_fraction must be in [0, 0.5), got {stretch_fraction}")
    if stretch_factor < 1.0:
        raise ValueError(f"stretch_factor must be >= 1, got {stretch_factor}")
    n_outer = int(round(n * stretch_fraction))
    n_inner = n - 2 * n_outer
    if n_inner < 2:
        n_inner = 2
        n_outer = (n - n_inner) // 2
    dx = inner_extent / max(n_inner - 1, 1)
    inner = np.arange(n_inner) * dx
    if n_outer == 0:
        return origin + inner
    # Geometric growth of spacing from dx to stretch_factor*dx over n_outer cells.
    ratios = np.linspace(1.0, stretch_factor, n_outer)
    outer_spacing = dx * ratios
    right = inner[-1] + np.cumsum(outer_spacing)
    left = inner[0] - np.cumsum(outer_spacing[::-1])[::-1]
    axis = np.concatenate([left, inner, right])
    return origin + (axis - axis[0])


@dataclass(frozen=True)
class RectilinearGrid:
    """A 3-D rectilinear grid defined by per-axis coordinate arrays.

    Attributes
    ----------
    x, y, z:
        Monotonically increasing coordinate arrays.  The grid has
        ``(len(x), len(y), len(z))`` points.
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray

    def __post_init__(self) -> None:
        for name, axis in (("x", self.x), ("y", self.y), ("z", self.z)):
            arr = np.asarray(axis, dtype=np.float64)
            if arr.ndim != 1 or arr.size < 1:
                raise ValueError(f"{name} axis must be a non-empty 1-D array")
            if arr.size > 1 and not np.all(np.diff(arr) > 0):
                raise ValueError(f"{name} axis must be strictly increasing")
            object.__setattr__(self, name, arr)

    @classmethod
    def uniform(
        cls,
        shape: Tuple[int, int, int],
        extent: Tuple[float, float, float] = (1.0, 1.0, 1.0),
    ) -> "RectilinearGrid":
        """Build a uniform grid with ``shape`` points spanning ``extent``."""
        nx, ny, nz = shape
        ex, ey, ez = extent
        return cls(uniform_axis(nx, ex), uniform_axis(ny, ey), uniform_axis(nz, ez))

    @classmethod
    def cm1_like(
        cls,
        shape: Tuple[int, int, int],
        horizontal_extent_km: float = 120.0,
        vertical_extent_km: float = 20.0,
        stretch_factor: float = 3.0,
        stretch_fraction: float = 0.12,
    ) -> "RectilinearGrid":
        """Build a CM1-like grid: stretched horizontally, uniform vertically."""
        nx, ny, nz = shape
        return cls(
            stretched_axis(nx, horizontal_extent_km, stretch_factor, stretch_fraction),
            stretched_axis(ny, horizontal_extent_km, stretch_factor, stretch_fraction),
            uniform_axis(nz, vertical_extent_km),
        )

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Number of grid points along each axis."""
        return (self.x.size, self.y.size, self.z.size)

    @property
    def npoints(self) -> int:
        """Total number of grid points."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def extent(self) -> Tuple[float, float, float]:
        """Physical extent spanned along each axis."""
        return (
            float(self.x[-1] - self.x[0]),
            float(self.y[-1] - self.y[0]),
            float(self.z[-1] - self.z[0]),
        )

    def spacing(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis spacing arrays (each of length ``n-1``)."""
        return (np.diff(self.x), np.diff(self.y), np.diff(self.z))

    def meshgrid(self, indexing: str = "ij"):
        """Return the full 3-D coordinate mesh (memory: 3 × npoints floats)."""
        return np.meshgrid(self.x, self.y, self.z, indexing=indexing)

    def subgrid(self, slices: Tuple[slice, slice, slice]) -> "RectilinearGrid":
        """Return the grid restricted to the given index slices."""
        return RectilinearGrid(self.x[slices[0]], self.y[slices[1]], self.z[slices[2]])

    def cell_volumes(self) -> np.ndarray:
        """Volumes of the ``(nx-1, ny-1, nz-1)`` cells of the grid."""
        dx, dy, dz = self.spacing()
        return dx[:, None, None] * dy[None, :, None] * dz[None, None, :]
