"""BlockBatch: a structure-of-arrays view over a set of equally-shaped blocks.

The per-block :class:`~repro.grid.block.Block` objects are the unit of
*semantics* (scoring, reduction, redistribution decisions), but iterating them
one ``np.ndarray`` at a time keeps every hot loop in Python.  A
:class:`BlockBatch` stacks the payloads of many equally-shaped blocks into one
``(nblocks, sx, sy, sz)`` array — plus parallel arrays for ids, extents,
owners, and scores — so that metrics and other array-friendly kernels can run
once over the whole batch instead of once per block.

The conversion is lossless: ``BlockBatch.from_blocks(blocks).to_blocks()``
reproduces the input blocks exactly (ids, extents, owners, homes, reduced
flags, ladder levels, scores, field names, payload values, and payload
dtype).  Blocks of
mixed shapes or dtypes cannot share one stacked array; use
:func:`partition_by_shape` to split an arbitrary block list into homogeneous
batches while remembering each block's original position.

Both hot data-parallel steps consume this layout: the vectorised scoring
step stacks cross-rank shape groups for ``metric.score_batch``, and the
vectorised rendering path groups blocks by the same shape/dtype key before
one ``count_active_cells_batch`` pass per stacked group (a post-reduction
block list yields at most a handful of groups — typically the full-block
shapes plus one 2×2×2 group holding every reduced block).  Both hot paths
stack payloads only; :func:`partition_by_shape` additionally carries the
metadata arrays for consumers that need a full :class:`BlockBatch`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.grid.block import Block, BlockExtent
from repro.grid.reduction import (  # re-exported: the ladder's batched twins
    expand_from_level_batch,
    reduce_to_level_batch,
)

__all__ = [
    "BlockBatch",
    "expand_from_level_batch",
    "group_positions_by_shape",
    "partition_by_shape",
    "reduce_to_level_batch",
]


@dataclass(frozen=True)
class BlockBatch:
    """Stacked payloads and metadata of ``nblocks`` equally-shaped blocks.

    Attributes
    ----------
    data:
        ``(nblocks, sx, sy, sz)`` stacked payload array (C-contiguous).
    block_ids:
        ``(nblocks,)`` int64 global block ids.
    starts, stops:
        ``(nblocks, 3)`` int64 extent bounds in global index space.
    owners, homes:
        ``(nblocks,)`` int64 current / original owner ranks.
    reduced:
        ``(nblocks,)`` bool flags (payload reduced, i.e. ``levels > 0``).
    levels:
        ``(nblocks,)`` int64 reduction-ladder rungs (0 full, 1 strided
        downsample, 2 corners).
    scores:
        ``(nblocks,)`` float64 scores; entries are only meaningful where
        ``score_mask`` is True (a block without a score keeps mask False, so
        even NaN scores round-trip losslessly).
    score_mask:
        ``(nblocks,)`` bool — whether the block carries a score.
    field_names:
        Per-block field names.
    """

    data: np.ndarray
    block_ids: np.ndarray
    starts: np.ndarray
    stops: np.ndarray
    owners: np.ndarray
    homes: np.ndarray
    reduced: np.ndarray
    levels: np.ndarray
    scores: np.ndarray
    score_mask: np.ndarray
    field_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        if data.ndim != 4:
            raise ValueError(f"batch data must be 4-D, got shape {data.shape}")
        n = data.shape[0]
        object.__setattr__(self, "data", data)
        for name, width in (
            ("block_ids", None),
            ("owners", None),
            ("homes", None),
            ("reduced", None),
            ("levels", None),
            ("scores", None),
            ("score_mask", None),
            ("starts", 3),
            ("stops", 3),
        ):
            arr = np.asarray(getattr(self, name))
            expected = (n,) if width is None else (n, width)
            if arr.shape != expected:
                raise ValueError(
                    f"{name} must have shape {expected}, got {arr.shape}"
                )
            object.__setattr__(self, name, arr)
        if len(self.field_names) != n:
            raise ValueError(
                f"field_names must have {n} entries, got {len(self.field_names)}"
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_blocks(cls, blocks: Sequence[Block]) -> "BlockBatch":
        """Stack ``blocks`` (non-empty, equal payload shapes) into one batch."""
        if not blocks:
            raise ValueError("cannot build a BlockBatch from an empty block list")
        shape = tuple(blocks[0].data.shape)
        for b in blocks:
            if tuple(b.data.shape) != shape:
                raise ValueError(
                    f"all blocks must share one payload shape; got {shape} and "
                    f"{tuple(b.data.shape)} (use partition_by_shape for mixed lists)"
                )
        ids, starts, stops, owners, homes, reduced, levels, raw_scores, field_names = zip(
            *(
                (
                    b.block_id,
                    b.extent.start,
                    b.extent.stop,
                    b.owner,
                    b.home,
                    b.reduced,
                    b.level,
                    b.score,
                    b.field_name,
                )
                for b in blocks
            )
        )
        mask = np.array([s is not None for s in raw_scores], dtype=bool)
        scores = np.array(
            [0.0 if s is None else float(s) for s in raw_scores], dtype=np.float64
        )
        return cls(
            data=np.stack([b.data for b in blocks]),
            block_ids=np.array(ids, dtype=np.int64),
            starts=np.array(starts, dtype=np.int64),
            stops=np.array(stops, dtype=np.int64),
            owners=np.array(owners, dtype=np.int64),
            homes=np.array(homes, dtype=np.int64),
            reduced=np.array(reduced, dtype=bool),
            levels=np.array(levels, dtype=np.int64),
            scores=scores,
            score_mask=mask,
            field_names=tuple(field_names),
        )

    def to_blocks(self) -> List[Block]:
        """Rebuild the per-block objects (payloads are independent copies)."""
        blocks: List[Block] = []
        for i in range(self.nblocks):
            blocks.append(
                Block(
                    block_id=int(self.block_ids[i]),
                    extent=BlockExtent(
                        start=tuple(int(v) for v in self.starts[i]),
                        stop=tuple(int(v) for v in self.stops[i]),
                    ),
                    data=np.array(self.data[i]),
                    owner=int(self.owners[i]),
                    home=int(self.homes[i]),
                    reduced=bool(self.reduced[i]),
                    level=int(self.levels[i]),
                    score=float(self.scores[i]) if self.score_mask[i] else None,
                    field_name=self.field_names[i],
                )
            )
        return blocks

    # -- basic properties ---------------------------------------------------

    @property
    def nblocks(self) -> int:
        """Number of blocks in the batch."""
        return int(self.data.shape[0])

    @property
    def block_shape(self) -> Tuple[int, int, int]:
        """Common payload shape of every block."""
        return tuple(int(s) for s in self.data.shape[1:])

    @property
    def npoints(self) -> int:
        """Total number of payload points across the batch."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Total payload bytes across the batch."""
        return int(self.data.nbytes)

    @property
    def flat_data(self) -> np.ndarray:
        """``(nblocks, npoints_per_block)`` view of the stacked payloads."""
        return self.data.reshape(self.nblocks, -1)

    # -- updates ------------------------------------------------------------

    def with_scores(self, scores: np.ndarray) -> "BlockBatch":
        """Return a copy of the batch with one score per block attached."""
        arr = np.asarray(scores, dtype=np.float64)
        if arr.shape != (self.nblocks,):
            raise ValueError(
                f"scores must have shape ({self.nblocks},), got {arr.shape}"
            )
        return replace(
            self, scores=arr, score_mask=np.ones(self.nblocks, dtype=bool)
        )


def group_positions_by_shape(blocks: Sequence[Block]) -> List[List[int]]:
    """Group block positions by payload shape *and* dtype.

    This is the batching key every stacked hot path shares (vectorised
    scoring, counting-mode rendering, mesh-mode chunking): blocks whose
    payloads share one shape/dtype stack without promotion.  Returns one
    position list per group, positions in input order; a typical
    pre-reduction rank list yields exactly one group, and all reduced
    2×2×2 blocks fall into one group.
    """
    groups: Dict[Tuple[Tuple[int, ...], np.dtype], List[int]] = {}
    for position, block in enumerate(blocks):
        key = (tuple(block.data.shape), block.data.dtype)
        groups.setdefault(key, []).append(position)
    return list(groups.values())


def partition_by_shape(
    blocks: Sequence[Block],
) -> List[Tuple[List[int], BlockBatch]]:
    """Split ``blocks`` into homogeneous batches, keeping original positions.

    Returns ``(indices, batch)`` pairs where ``blocks[indices[i]]`` is row
    ``i`` of ``batch``; the grouping key is :func:`group_positions_by_shape`'s.
    """
    return [
        (indices, BlockBatch.from_blocks([blocks[i] for i in indices]))
        for indices in group_positions_by_shape(blocks)
    ]
