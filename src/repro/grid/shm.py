"""Shared-memory payloads for crossing process boundaries zero-copy.

The process backend ships block payloads to ``ProcessPoolExecutor`` workers.
Pickling a stacked ``(nblocks, sx, sy, sz)`` payload array through the task
queue would copy it twice (serialise + deserialise) per task; instead the
parent copies it **once** into a ``multiprocessing.shared_memory`` segment
and workers map the same physical pages.  :class:`SharedBlockBatch` wraps
that segment with an explicit lifecycle:

``create``/``from_batch``
    Parent-side: allocate a segment, copy the payload in, become the *owner*.
``handle()`` / pickling
    Produces a tiny :class:`ShmBatchHandle` (segment name + shape + dtype);
    pickling a :class:`SharedBlockBatch` ships the handle, never the bytes.
``attach``
    Worker-side: map an existing segment by handle.  The mapped view is
    marked read-only — workers score/count payloads, they never mutate them.
``close``
    Unmap this process's view (owner and workers alike).
``unlink``
    Owner-side: destroy the segment.  Exactly one process — the creator —
    must unlink, and only after every consumer closed or will fail to
    attach.  ``dispose()`` is the owner's close-then-unlink convenience.

Every live *owned* segment is tracked in a module-level registry so tests
can assert that pipeline runs (including ones that die in a worker) leak
nothing; see :func:`live_owned_segments`.

Resource-tracker caveat (bpo-39959): ``SharedMemory(name=...)`` registers
the segment with the attaching process's ``resource_tracker`` as if it were
the creator.  The process backend runs its workers under the ``fork`` start
method, where every forked process shares the parent's tracker daemon and
duplicate registrations collapse into one — so attach-side registration is
harmless and the creator's ``unlink`` retires the name exactly once.  (On
spawn-only platforms workers own private trackers and may log harmless
"leaked shared_memory" warnings at exit; they never unlink a live segment
because steps dispose their segments before returning.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.grid.batch import BlockBatch
from repro.grid.block import Block

__all__ = [
    "ShmBatchHandle",
    "SharedBatchError",
    "SharedBlockBatch",
    "live_owned_segments",
    "purge_owned_segments",
]


class SharedBatchError(RuntimeError):
    """Lifecycle misuse of a :class:`SharedBlockBatch` (see message)."""


@dataclass(frozen=True)
class ShmBatchHandle:
    """Picklable descriptor of a shared payload segment.

    Carries everything a worker needs to map the payload — the OS-level
    segment ``name`` plus the array ``shape``/``dtype`` — and nothing else,
    so shipping a handle through a task queue costs ~100 bytes regardless
    of payload size.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


#: Names of shared segments created (and not yet unlinked) by this process.
_OWNED: Dict[str, "SharedBlockBatch"] = {}
_OWNED_LOCK = threading.Lock()


def live_owned_segments() -> Tuple[str, ...]:
    """Names of segments this process created and has not unlinked yet.

    The leak-check tests assert this is empty after a pipeline run: every
    step that creates shared payloads must dispose of them in a ``finally``
    block, even when a worker raised.
    """
    with _OWNED_LOCK:
        return tuple(sorted(_OWNED))


def purge_owned_segments() -> Tuple[str, ...]:
    """Dispose every segment this process still owns; returns their names.

    Well-behaved steps dispose their segments in ``finally`` blocks, so this
    normally returns ``()``.  Long-lived servers call it anyway after a
    cancelled (timed-out / shut-down) run and at shutdown: a run abandoned
    mid-flight must not leak OS shared memory for the life of the process,
    and a non-empty return value is itself a signal tests assert on.
    """
    with _OWNED_LOCK:
        leaked = dict(_OWNED)
    for batch in leaked.values():
        batch.dispose()
    return tuple(sorted(leaked))


class SharedBlockBatch:
    """A stacked payload array living in OS shared memory.

    Instances come in two flavours: *owners* (built by :meth:`create` /
    :meth:`from_batch`, responsible for :meth:`unlink`) and *views* (built
    by :meth:`attach` or by unpickling, responsible only for :meth:`close`).
    ``batch`` metadata (ids, extents, owners, scores, ...) is optional and
    always travels by value — only the payload crosses zero-copy.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
        meta: Optional[BlockBatch] = None,
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._name = shm.name
        self._shape = tuple(int(s) for s in shape)
        self._dtype = np.dtype(dtype)
        self._owner = bool(owner)
        self._unlinked = False
        self._meta = meta
        view = np.ndarray(self._shape, dtype=self._dtype, buffer=shm.buf)
        if not owner:
            view.setflags(write=False)
        self._data: Optional[np.ndarray] = view

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, payload: np.ndarray) -> "SharedBlockBatch":
        """Copy ``payload`` (any 4-D stacked array) into a fresh segment."""
        arr = np.ascontiguousarray(payload)
        if arr.ndim != 4:
            raise ValueError(f"stacked payload must be 4-D, got shape {arr.shape}")
        if arr.size == 0:
            raise ValueError("cannot share an empty payload")
        shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        batch = cls(shm, arr.shape, arr.dtype, owner=True)
        assert batch._data is not None
        batch._data[...] = arr
        with _OWNED_LOCK:
            _OWNED[shm.name] = batch
        return batch

    @classmethod
    def from_batch(cls, batch: BlockBatch) -> "SharedBlockBatch":
        """Share a :class:`BlockBatch`'s payload, keeping its metadata by value."""
        shared = cls.create(batch.data)
        shared._meta = batch
        return shared

    @classmethod
    def from_blocks(cls, blocks: Sequence[Block]) -> "SharedBlockBatch":
        """Stack equally-shaped ``blocks`` and share the result."""
        return cls.from_batch(BlockBatch.from_blocks(blocks))

    @classmethod
    def attach(cls, handle: ShmBatchHandle) -> "SharedBlockBatch":
        """Map an existing segment by handle (worker side, read-only view)."""
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        except FileNotFoundError:
            raise SharedBatchError(
                f"cannot attach shared batch {handle.name!r}: the segment does "
                "not exist — it was already unlinked by its owner (or never "
                "created in this namespace)"
            ) from None
        return cls(shm, handle.shape, np.dtype(handle.dtype), owner=False)

    # -- access -------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The ``(nblocks, sx, sy, sz)`` payload view backed by the segment."""
        if self._data is None:
            raise SharedBatchError(
                "shared batch is closed; its payload view is no longer mapped"
            )
        return self._data

    @property
    def batch(self) -> BlockBatch:
        """A :class:`BlockBatch` whose ``data`` is the shared view.

        Only available when built via :meth:`from_batch`/:meth:`from_blocks`
        (the metadata arrays travel by value through pickling).
        """
        if self._meta is None:
            raise SharedBatchError(
                "shared batch carries no block metadata (built from a bare "
                "payload array); use .data instead"
            )
        from dataclasses import replace

        return replace(self._meta, data=self.data)

    @property
    def owner(self) -> bool:
        """Whether this instance created (and must unlink) the segment."""
        return self._owner

    @property
    def name(self) -> str:
        """OS-level segment name."""
        return self._name

    @property
    def nbytes(self) -> int:
        """Payload bytes held by the segment."""
        return int(np.prod(self._shape, dtype=np.int64)) * self._dtype.itemsize

    def handle(self) -> ShmBatchHandle:
        """The picklable descriptor workers use to :meth:`attach`."""
        return ShmBatchHandle(self.name, self._shape, self._dtype.str)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view.  Idempotent."""
        self._data = None
        if self._shm is not None:
            shm, self._shm = self._shm, None
            shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only).  Idempotent."""
        if not self._owner:
            raise SharedBatchError(
                "only the creating process may unlink a shared batch; "
                "workers must close() their attached views instead"
            )
        if self._unlinked:
            return
        self._unlinked = True
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        else:
            # Closed before unlink: re-open purely to destroy the name.
            try:
                shm = shared_memory.SharedMemory(name=self._name)
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            else:
                shm.unlink()
                shm.close()
        with _OWNED_LOCK:
            _OWNED.pop(self._name, None)

    def dispose(self) -> None:
        """Owner convenience: unlink the segment, then unmap the view."""
        if self._owner:
            self.unlink()
        self.close()

    # -- pickling / context management --------------------------------------

    def __reduce__(self):
        return (SharedBlockBatch.attach, (self.handle(),))

    def __enter__(self) -> "SharedBlockBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.dispose()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._data is None else "open"
        role = "owner" if self._owner else "view"
        return (
            f"SharedBlockBatch({role}, {state}, shape={self._shape}, "
            f"dtype={self._dtype}, nbytes={self.nbytes})"
        )
