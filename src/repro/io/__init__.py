"""Block I/O: a BIL-like store for pre-generated simulation iterations.

The paper avoids re-running CM1's expensive computation phase for every
experiment by replaying a stored dataset (572 iterations written during a
3-day Blue Waters run) through the in situ kernel, using the Block I/O
Library (BIL) to reload it.  This package plays the same role: a
:class:`DatasetStore` persists iterations of :class:`~repro.grid.domain.Domain`
snapshots to disk (one compressed ``.npz`` per iteration plus a JSON
manifest), and :class:`DatasetReplayer` feeds them back — optionally
subdomain-by-subdomain the way a parallel collective read would.
"""

from repro.io.manifest import DatasetManifest, IterationRecord
from repro.io.store import DatasetStore
from repro.io.replay import DatasetReplayer

__all__ = ["DatasetManifest", "IterationRecord", "DatasetStore", "DatasetReplayer"]
