"""On-disk dataset store (one compressed ``.npz`` per iteration)."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.grid.domain import Domain
from repro.grid.rectilinear import RectilinearGrid
from repro.io.manifest import DatasetManifest, IterationRecord


class DatasetStore:
    """Persist and reload :class:`~repro.grid.domain.Domain` iterations.

    Layout::

        <root>/
            manifest.json
            grid_axes.npz            # x, y, z axes
            iter_0000005000.npz      # one file per iteration, fields as arrays

    The store is append-only: iterations must be written in increasing order,
    mirroring how a running simulation emits them.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._manifest: Optional[DatasetManifest] = None

    # -- writing -------------------------------------------------------------

    def create(self, grid: RectilinearGrid, metadata: Optional[Dict] = None) -> None:
        """Initialise an empty store for domains on ``grid``."""
        if self.exists():
            raise FileExistsError(f"a dataset already exists at {self.root}")
        self.root.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(self.root / "grid_axes.npz", x=grid.x, y=grid.y, z=grid.z)
        self._manifest = DatasetManifest(shape=grid.shape, metadata=metadata or {})
        self._manifest.save(self.root)

    def append(self, domain: Domain) -> IterationRecord:
        """Append one iteration to the store and update the manifest.

        Fields are stored with their *own* dtype (recorded in the manifest),
        so a float64 dataset round-trips bit-exactly instead of being
        silently squeezed through float32.
        """
        manifest = self.manifest()
        if tuple(domain.shape) != tuple(manifest.shape):
            raise ValueError(
                f"domain shape {domain.shape} does not match stored shape {manifest.shape}"
            )
        if not domain.fields:
            raise ValueError("cannot store a domain with no fields")
        filename = f"iter_{domain.iteration:010d}.npz"
        path = self.root / filename
        arrays = {name: np.asarray(arr) for name, arr in domain.fields.items()}
        np.savez_compressed(path, **arrays)
        record = IterationRecord(
            iteration=domain.iteration,
            filename=filename,
            fields=sorted(arrays),
            nbytes=int(path.stat().st_size),
            dtypes={name: arr.dtype.str for name, arr in arrays.items()},
        )
        manifest.add_iteration(record)
        manifest.save(self.root)
        return record

    # -- reading --------------------------------------------------------------

    def exists(self) -> bool:
        """True if a manifest is present under the store root."""
        return (self.root / "manifest.json").exists()

    def manifest(self) -> DatasetManifest:
        """Return (and cache) the manifest."""
        if self._manifest is None:
            self._manifest = DatasetManifest.load(self.root)
        return self._manifest

    def grid(self) -> RectilinearGrid:
        """Reload the rectilinear grid axes."""
        manifest = self.manifest()
        with np.load(self.root / manifest.grid_axes_file) as data:
            return RectilinearGrid(data["x"], data["y"], data["z"])

    def iterations(self) -> List[int]:
        """Iteration numbers available in the store."""
        return [rec.iteration for rec in self.manifest().iterations]

    def load_iteration(
        self, iteration: int, fields: Optional[Iterable[str]] = None
    ) -> Domain:
        """Load one stored iteration as a :class:`Domain`.

        Parameters
        ----------
        iteration:
            Iteration number (as recorded, not a positional index).
        fields:
            Optional subset of field names to load; all stored fields when
            omitted.
        """
        manifest = self.manifest()
        record = manifest.find(iteration)
        if record is None:
            raise KeyError(f"iteration {iteration} not present in {self.root}")
        wanted = set(fields) if fields is not None else set(record.fields)
        missing = wanted - set(record.fields)
        if missing:
            raise KeyError(f"fields {sorted(missing)} not stored for iteration {iteration}")
        grid = self.grid()
        out: Dict[str, np.ndarray] = {}
        with np.load(self.root / record.filename) as data:
            for name in sorted(wanted):
                arr = np.asarray(data[name])
                stored_dtype = record.dtypes.get(name)
                if stored_dtype is not None and arr.dtype != np.dtype(stored_dtype):
                    arr = arr.astype(np.dtype(stored_dtype))
                out[name] = arr
        return Domain(grid=grid, fields=out, iteration=iteration)
