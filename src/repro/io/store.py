"""On-disk dataset store (compressed ``.npz`` or mmap-friendly raw layout)."""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.grid.domain import Domain
from repro.grid.rectilinear import RectilinearGrid
from repro.io.manifest import LAYOUTS, DatasetManifest, IterationRecord

#: Byte alignment of each field slab in the raw layout.  64 bytes covers
#: every dtype the store sees and matches cache-line / SIMD-load alignment,
#: so a memory-mapped field behaves like a freshly allocated array.
RAW_ALIGNMENT = 64


class DatasetStore:
    """Persist and reload :class:`~repro.grid.domain.Domain` iterations.

    Two layouts, recorded in the manifest:

    ``"npz"`` (default)::

        <root>/
            manifest.json
            grid_axes.npz            # x, y, z axes
            iter_0000005000.npz      # one file per iteration, fields as arrays

    ``"raw"``::

        <root>/
            manifest.json
            grid_axes.npz
            iter_0000005000.bin      # one flat file per iteration: each field
                                     # a contiguous C-order slab at a 64-byte-
                                     # aligned offset recorded in the manifest

    The raw layout trades compression for zero-copy reads:
    ``load_iteration(..., mmap=True)`` maps each field straight off disk
    with ``np.memmap`` (no deserialisation, no copy, pages faulted in on
    first touch), which is what lets cached replays and benchmark gates skip
    re-simulating CM1.

    The store is append-only: iterations must be written in increasing order,
    mirroring how a running simulation emits them.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._manifest: Optional[DatasetManifest] = None

    # -- writing -------------------------------------------------------------

    def create(
        self,
        grid: RectilinearGrid,
        metadata: Optional[Dict] = None,
        layout: str = "npz",
    ) -> None:
        """Initialise an empty store for domains on ``grid``.

        ``layout`` selects the on-disk format (one of
        :data:`~repro.io.manifest.LAYOUTS`); it applies to every iteration
        appended later and is recorded in the manifest.
        """
        if self.exists():
            raise FileExistsError(f"a dataset already exists at {self.root}")
        if layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {LAYOUTS}, got {layout!r}")
        self.root.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(self.root / "grid_axes.npz", x=grid.x, y=grid.y, z=grid.z)
        self._manifest = DatasetManifest(
            shape=grid.shape, metadata=metadata or {}, layout=layout
        )
        self._manifest.save(self.root)

    def append(self, domain: Domain) -> IterationRecord:
        """Append one iteration to the store and update the manifest.

        Fields are stored with their *own* dtype (recorded in the manifest),
        so a float64 dataset round-trips bit-exactly instead of being
        silently squeezed through float32.
        """
        manifest = self.manifest()
        if tuple(domain.shape) != tuple(manifest.shape):
            raise ValueError(
                f"domain shape {domain.shape} does not match stored shape {manifest.shape}"
            )
        if not domain.fields:
            raise ValueError("cannot store a domain with no fields")
        arrays = {name: np.asarray(arr) for name, arr in domain.fields.items()}
        if manifest.layout == "raw":
            filename = f"iter_{domain.iteration:010d}.bin"
            offsets = self._write_raw(self.root / filename, arrays)
        else:
            filename = f"iter_{domain.iteration:010d}.npz"
            np.savez_compressed(self.root / filename, **arrays)
            offsets = {}
        record = IterationRecord(
            iteration=domain.iteration,
            filename=filename,
            fields=sorted(arrays),
            nbytes=int((self.root / filename).stat().st_size),
            dtypes={name: arr.dtype.str for name, arr in arrays.items()},
            offsets=offsets,
        )
        manifest.add_iteration(record)
        manifest.save(self.root)
        return record

    @staticmethod
    def _write_raw(path: Path, arrays: Dict[str, np.ndarray]) -> Dict[str, int]:
        """Write fields as aligned contiguous slabs; return per-field offsets."""
        offsets: Dict[str, int] = {}
        with open(path, "wb") as fh:
            for name in sorted(arrays):
                position = fh.tell()
                padding = (-position) % RAW_ALIGNMENT
                if padding:
                    fh.write(b"\0" * padding)
                offsets[name] = position + padding
                fh.write(np.ascontiguousarray(arrays[name]).tobytes())
        return offsets

    # -- reading --------------------------------------------------------------

    def exists(self) -> bool:
        """True if a manifest is present under the store root."""
        return (self.root / "manifest.json").exists()

    def nbytes(self) -> int:
        """Total on-disk bytes of the store (manifest, grid, every iteration).

        Measured from the filesystem rather than the manifest's per-record
        ``nbytes`` so it also accounts for the manifest and grid files —
        this is the number the replay cache's ``max_bytes`` bound charges a
        cached entry for.
        """
        if not self.root.exists():
            return 0
        return sum(
            path.stat().st_size for path in self.root.rglob("*") if path.is_file()
        )

    def delete(self) -> None:
        """Remove the store directory and everything in it (idempotent).

        Open readers survive on POSIX: an ``np.memmap`` holds the inode
        alive until it is unmapped, so eviction of a store that a replay is
        still streaming from only unlinks the names — which is why the
        replay cache additionally refuses to evict entries with registered
        in-flight readers.
        """
        self._manifest = None
        shutil.rmtree(self.root, ignore_errors=True)

    def manifest(self) -> DatasetManifest:
        """Return (and cache) the manifest."""
        if self._manifest is None:
            self._manifest = DatasetManifest.load(self.root)
        return self._manifest

    def grid(self) -> RectilinearGrid:
        """Reload the rectilinear grid axes."""
        manifest = self.manifest()
        with np.load(self.root / manifest.grid_axes_file) as data:
            return RectilinearGrid(data["x"], data["y"], data["z"])

    def iterations(self) -> List[int]:
        """Iteration numbers available in the store."""
        return [rec.iteration for rec in self.manifest().iterations]

    @property
    def layout(self) -> str:
        """On-disk layout of the store ("npz" or "raw")."""
        return self.manifest().layout

    def load_iteration(
        self,
        iteration: int,
        fields: Optional[Iterable[str]] = None,
        mmap: bool = False,
    ) -> Domain:
        """Load one stored iteration as a :class:`Domain`.

        Parameters
        ----------
        iteration:
            Iteration number (as recorded, not a positional index).
        fields:
            Optional subset of field names to load; all stored fields when
            omitted.
        mmap:
            When True and the store uses the ``"raw"`` layout, fields are
            returned as read-only ``np.memmap`` views straight off disk —
            zero copy, zero deserialisation.  Compressed ``"npz"`` stores
            cannot be mapped (the archive is zipped), so the flag raises
            there rather than silently degrading.
        """
        manifest = self.manifest()
        record = manifest.find(iteration)
        if record is None:
            raise KeyError(f"iteration {iteration} not present in {self.root}")
        wanted = set(fields) if fields is not None else set(record.fields)
        missing = wanted - set(record.fields)
        if missing:
            raise KeyError(f"fields {sorted(missing)} not stored for iteration {iteration}")
        if mmap and manifest.layout != "raw":
            raise ValueError(
                f"mmap loads require the 'raw' layout, this store uses "
                f"{manifest.layout!r}"
            )
        grid = self.grid()
        if manifest.layout == "raw":
            out = self._load_raw_fields(record, sorted(wanted), manifest.shape, mmap)
        else:
            out = self._load_npz_fields(record, sorted(wanted))
        return Domain(grid=grid, fields=out, iteration=iteration)

    def _load_npz_fields(
        self, record: IterationRecord, names: List[str]
    ) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        with np.load(self.root / record.filename) as data:
            for name in names:
                arr = np.asarray(data[name])
                stored_dtype = record.dtypes.get(name)
                if stored_dtype is not None and arr.dtype != np.dtype(stored_dtype):
                    arr = arr.astype(np.dtype(stored_dtype))
                out[name] = arr
        return out

    def _load_raw_fields(
        self,
        record: IterationRecord,
        names: List[str],
        shape: tuple,
        mmap: bool,
    ) -> Dict[str, np.ndarray]:
        path = self.root / record.filename
        out: Dict[str, np.ndarray] = {}
        for name in names:
            stored_dtype = record.dtypes.get(name)
            offset = record.offsets.get(name)
            if stored_dtype is None or offset is None:
                raise ValueError(
                    f"raw-layout record for iteration {record.iteration} lacks "
                    f"dtype/offset for field {name!r}"
                )
            dtype = np.dtype(stored_dtype)
            if mmap:
                out[name] = np.memmap(
                    path, dtype=dtype, mode="r", offset=offset, shape=tuple(shape)
                )
            else:
                count = int(np.prod(shape))
                out[name] = np.fromfile(
                    path, dtype=dtype, count=count, offset=offset
                ).reshape(tuple(shape))
        return out
