"""Replaying a stored dataset through the in situ pipeline.

The paper evaluates its pipeline on 10 (or 30) iterations *equally spaced in
time* out of a 572-iteration stored dataset.  :class:`DatasetReplayer`
reproduces that access pattern: pick ``n`` equally spaced iterations and hand
each one to the pipeline, either as a full :class:`Domain` or already split
into per-rank block lists (the way BIL's collective read would deliver it).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.grid.block import Block
from repro.grid.decomposition import CartesianDecomposition
from repro.grid.domain import Domain
from repro.io.store import DatasetStore


def equally_spaced(available: Sequence[int], count: int) -> List[int]:
    """Pick ``count`` equally spaced entries from ``available`` (keeping order).

    Mirrors the paper's "10 iterations, equally spaced in time" selection.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    available = list(available)
    if not available:
        raise ValueError("no iterations available")
    if count >= len(available):
        return list(available)
    idx = np.linspace(0, len(available) - 1, count).round().astype(int)
    # De-duplicate while preserving order (possible when count ~ len).
    seen = dict.fromkeys(int(i) for i in idx)
    return [available[i] for i in seen]


class DatasetReplayer:
    """Feeds stored iterations to the in situ visualization kernel.

    ``mmap=True`` (raw-layout stores only) replays fields as read-only
    memory-mapped views instead of materialised arrays — block extraction
    copies just the subdomain slices it needs, so a replay touches only the
    pages the decomposition actually reads.
    """

    def __init__(
        self, store: DatasetStore, field_name: str = "dbz", mmap: bool = False
    ) -> None:
        self.store = store
        self.field_name = field_name
        self.mmap = bool(mmap)

    def select_iterations(self, count: int) -> List[int]:
        """Equally spaced selection of ``count`` stored iterations."""
        return equally_spaced(self.store.iterations(), count)

    def domains(self, count: int) -> Iterator[Domain]:
        """Yield ``count`` equally spaced stored iterations as domains."""
        for iteration in self.select_iterations(count):
            yield self.store.load_iteration(
                iteration, fields=[self.field_name], mmap=self.mmap
            )

    def per_rank_blocks(
        self,
        decomposition: CartesianDecomposition,
        count: int,
    ) -> Iterator[List[List[Block]]]:
        """Yield, per selected iteration, the list of per-rank block lists.

        This mimics a BIL-style collective read where each rank ends up with
        the blocks of its own subdomain.
        """
        for domain in self.domains(count):
            field = domain.get_field(self.field_name)
            yield [
                decomposition.extract_blocks(rank, field, self.field_name)
                for rank in range(decomposition.nranks)
            ]
