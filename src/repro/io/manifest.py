"""Dataset manifest: what iterations and fields a stored dataset contains."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

MANIFEST_FILENAME = "manifest.json"
FORMAT_VERSION = 1

#: Supported on-disk layouts: ``"npz"`` (one compressed archive per
#: iteration, the historical default) and ``"raw"`` (one flat binary file
#: per iteration with manifest-recorded per-field byte offsets, loadable
#: zero-copy through ``np.memmap``).
LAYOUTS = ("npz", "raw")


@dataclass
class IterationRecord:
    """One stored iteration.

    ``dtypes`` maps field names to NumPy dtype strings (``np.dtype.str``,
    e.g. ``"<f8"``) as stored on disk, so a load reproduces each field's
    dtype exactly.  Records written before dtypes were tracked leave the
    mapping empty; such fields load with whatever dtype the ``.npz`` holds
    (historically float32).

    ``offsets`` maps field names to byte offsets inside ``filename`` — only
    populated by the ``"raw"`` layout, where each field is one contiguous
    C-order array slab (aligned for mmap-friendly access) and the manifest
    is the sole source of truth for where it starts.
    """

    iteration: int
    filename: str
    fields: List[str]
    nbytes: int = 0
    dtypes: Dict[str, str] = field(default_factory=dict)
    offsets: Dict[str, int] = field(default_factory=dict)

    def validate(self) -> None:
        """Basic consistency checks; raises ``ValueError`` on problems."""
        if self.iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {self.iteration}")
        if not self.filename:
            raise ValueError("filename must not be empty")
        if not self.fields:
            raise ValueError("an iteration record must list at least one field")
        unknown = set(self.dtypes) - set(self.fields)
        if unknown:
            raise ValueError(
                f"dtypes recorded for unknown fields {sorted(unknown)}"
            )
        unknown_offsets = set(self.offsets) - set(self.fields)
        if unknown_offsets:
            raise ValueError(
                f"offsets recorded for unknown fields {sorted(unknown_offsets)}"
            )
        if any(offset < 0 for offset in self.offsets.values()):
            raise ValueError("field offsets must be >= 0")


@dataclass
class DatasetManifest:
    """Manifest describing a stored dataset.

    Attributes
    ----------
    shape:
        Grid shape shared by every field of every iteration.
    grid_axes_file:
        Name of the ``.npz`` file holding the rectilinear axes (x, y, z).
    iterations:
        Records of the stored iterations, in storage order.
    metadata:
        Free-form provenance (config used to generate the data, seed, ...).
    layout:
        On-disk layout of the iteration files (one of :data:`LAYOUTS`).
        Manifests written before layouts existed carry no key and default to
        ``"npz"``, so old stores keep loading unchanged.
    """

    shape: Tuple[int, int, int]
    grid_axes_file: str = "grid_axes.npz"
    iterations: List[IterationRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    layout: str = "npz"
    version: int = FORMAT_VERSION

    def __post_init__(self) -> None:
        if self.layout not in LAYOUTS:
            raise ValueError(
                f"layout must be one of {LAYOUTS}, got {self.layout!r}"
            )

    def add_iteration(self, record: IterationRecord) -> None:
        """Append a record, enforcing strictly increasing iteration numbers."""
        record.validate()
        if self.iterations and record.iteration <= self.iterations[-1].iteration:
            raise ValueError(
                f"iteration {record.iteration} is not greater than the last stored "
                f"iteration {self.iterations[-1].iteration}"
            )
        self.iterations.append(record)

    def find(self, iteration: int) -> Optional[IterationRecord]:
        """Return the record for ``iteration`` or ``None``."""
        for rec in self.iterations:
            if rec.iteration == iteration:
                return rec
        return None

    @property
    def niterations(self) -> int:
        """Number of stored iterations."""
        return len(self.iterations)

    # -- (de)serialisation -----------------------------------------------------

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        payload = asdict(self)
        payload["shape"] = list(self.shape)
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DatasetManifest":
        """Parse a manifest from its JSON representation."""
        payload = json.loads(text)
        version = int(payload.get("version", 0))
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported manifest version {version}, expected {FORMAT_VERSION}"
            )
        iterations = [IterationRecord(**rec) for rec in payload.get("iterations", [])]
        return cls(
            shape=tuple(int(v) for v in payload["shape"]),
            grid_axes_file=payload.get("grid_axes_file", "grid_axes.npz"),
            iterations=iterations,
            metadata=payload.get("metadata", {}),
            layout=payload.get("layout", "npz"),
            version=version,
        )

    def save(self, directory: Path) -> Path:
        """Write the manifest into ``directory`` and return its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_FILENAME
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, directory: Path) -> "DatasetManifest":
        """Read the manifest stored in ``directory``."""
        path = Path(directory) / MANIFEST_FILENAME
        if not path.exists():
            raise FileNotFoundError(f"no dataset manifest at {path}")
        return cls.from_json(path.read_text())
