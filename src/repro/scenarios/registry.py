"""The named workload registry.

Mirrors the step-backend registry of :mod:`repro.core.backends`: scenarios
are registered under a name (directly or as a decorator), listed in
registration order, and resolved by every consumer — the experiment
scenario constructors, the ``python -m repro`` CLI, the benchmark
fixtures, and the cross-backend parity sweep in ``tests/test_scenarios.py``
(which parameterises over :func:`scenario_names`, so a newly registered
workload gets three-backend parity coverage without writing a test).

Third-party workloads plug in without editing this package::

    from repro.scenarios import ScenarioConfig, register_scenario

    @register_scenario("hurricane", description="landfalling eyewall",
                       tags=("storm-family",))
    def _hurricane(**overrides):
        return ScenarioConfig(storm=HurricaneConfig(), **overrides)
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.scenarios.spec import ScenarioConfig, ScenarioFactory, ScenarioSpec

__all__ = [
    "create_scenario_config",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "scenario_specs",
]

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    name: str,
    factory: Optional[ScenarioFactory] = None,
    *,
    description: str = "",
    tags: Tuple[str, ...] = (),
):
    """Register ``factory`` as the workload named ``name``.

    Usable directly (``register_scenario("tiny", make_tiny, ...)``) or as a
    decorator (``@register_scenario("tiny", ...)``).  Re-registering a name
    overwrites it — that is how a downstream package deliberately replaces a
    built-in workload.

    The spec's ``default_ranks``/``default_snapshots`` metadata is read off
    the config the factory builds with no overrides, so it cannot drift from
    what the factory actually produces.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("scenario name must not be empty")

    def register(func: ScenarioFactory) -> ScenarioFactory:
        defaults = func()
        _REGISTRY[key] = ScenarioSpec(
            name=key,
            factory=func,
            description=description,
            tags=tuple(tags),
            default_ranks=defaults.ncores,
            default_snapshots=defaults.nsnapshots,
        )
        return func

    return register if factory is None else register(factory)


def scenario_names() -> Tuple[str, ...]:
    """Registered workload names, in registration order."""
    return tuple(_REGISTRY)


def scenario_specs() -> Tuple[ScenarioSpec, ...]:
    """Registered workload specs, in registration order."""
    return tuple(_REGISTRY.values())


def get_scenario(name: str) -> ScenarioSpec:
    """The spec registered under ``name`` (case-insensitive).

    Raises ``KeyError`` naming the available workloads when unknown — the
    message the CLI surfaces on a typo.
    """
    key = name.strip().lower()
    spec = _REGISTRY.get(key)
    if spec is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        )
    return spec


def create_scenario_config(name: str, **overrides) -> ScenarioConfig:
    """Build the :class:`ScenarioConfig` of the workload named ``name``.

    Keyword overrides (``ncores``, ``nsnapshots``, ``shape``,
    ``blocks_per_subdomain``, ``seed``, ...) replace the family's defaults;
    ``None`` values are ignored so CLI arguments can be forwarded directly.
    """
    return get_scenario(name).build(**overrides)
