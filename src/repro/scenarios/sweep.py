"""Cost-model-driven scaling sweeps at virtual rank counts the data path
cannot reach.

Running the real pipeline materialises every block's points, so it tops out
around a few hundred virtual ranks before memory and time explode.  The
paper's question — how does one in situ iteration scale on a Blue
Waters-like machine? — does not need the data, only the *work counts*: the
decomposition fixes per-rank points and blocks analytically, and the
platform/network cost models convert counts into modelled seconds.  This
module prices a full pipeline iteration that way, which is what lets a
weak-scaling sweep reach 10,000 virtual ranks in seconds:

* **scoring** — per-rank ``per_point * npoints + per_block * nblocks``
  through :meth:`PlatformModel.scoring_seconds`'s coefficients, vectorised
  over all ranks at once;
* **sorting** — the gather–sort–broadcast scheme of
  :func:`repro.simmpi.sort.parallel_sort_pairs`: one gather of per-rank
  ``(nblocks, 2)`` float64 pair arrays plus one broadcast of the global
  sorted array, priced by :class:`NetworkCostModel`;
* **reduction** — the lowest-scoring ``percent``% of blocks are reduced to
  corner values; block scores are drawn from a seeded synthetic
  distribution (the sweep has no data to score), so the per-rank reduced
  counts are deterministic per config seed;
* **redistribution** — surviving full blocks are dealt round-robin over a
  seeded permutation (the planner's deterministic-deal idiom); the resulting
  ``P × P`` byte matrix is priced by the *vectorised*
  :meth:`NetworkCostModel.alltoallv` — at 10,000 ranks that matrix has 10⁸
  cells, which is exactly the scale the vectorised row/column-sum pricing
  exists for;
* **rendering** — per-rank triangle counts from a seeded active-fraction
  proxy (reduced blocks contribute nothing), accumulated onto the
  post-redistribution owners with ``np.bincount`` and priced with the
  :class:`RenderCostModel` coefficients, vectorised over ranks.

Sweep points are independent, so :func:`model_scaling_sweep` fans them out
over the shared process pool (:func:`repro.utils.procpool.shared_process_pool`)
when more than one worker is available.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.grid.decomposition import factorize_ranks, split_axis
from repro.metrics.registry import create_metric
from repro.perfmodel.platform import PlatformModel
from repro.scenarios.scaling import scaling_variants
from repro.scenarios.spec import ScenarioConfig
from repro.utils.procpool import default_process_workers, shared_process_pool

__all__ = ["model_scaling_point", "model_scaling_sweep"]

#: Bytes per grid point (float64 fields, matching the data path).
_BYTES_PER_POINT = 8

#: Wire bytes per (block id, score) pair — one float64 row of the ``(n, 2)``
#: arrays :func:`parallel_sort_pairs` actually gathers and broadcasts.
_BYTES_PER_PAIR = 16


def _axis_sizes(npoints: int, nparts: int) -> np.ndarray:
    """Sizes of the ``nparts`` contiguous ranges :func:`split_axis` produces."""
    return np.asarray([hi - lo for lo, hi in split_axis(npoints, nparts)], dtype=np.int64)


def model_scaling_point(
    config: ScenarioConfig,
    metric: str = "VAR",
    percent: float = 50.0,
    active_fraction: float = 0.15,
) -> Dict[str, object]:
    """Price one pipeline iteration of ``config`` analytically.

    Parameters
    ----------
    config:
        The scenario configuration to price (typically one
        :func:`~repro.scenarios.scaling.scaling_variants` entry).
    metric:
        Registered metric name; its calibrated cost coefficients price the
        scoring step.
    percent:
        Fraction of blocks (0–100) reduced to corner values, mirroring the
        pipeline's ``percent_override``.
    active_fraction:
        Fraction of a surviving block's cells assumed to produce isosurface
        triangles (the synthetic stand-in for marching cubes output).

    Returns
    -------
    dict
        Modelled per-step seconds (``"scoring"``, ``"sorting"``,
        ``"reduction"``, ``"redistribution"``, ``"rendering"``), their
        ``"modelled_total"``, and the work counts they were derived from.
    """
    if not (0.0 <= percent <= 100.0):
        raise ValueError(f"percent must be in [0, 100], got {percent}")
    if not (0.0 <= active_fraction <= 1.0):
        raise ValueError(f"active_fraction must be in [0, 1], got {active_fraction}")
    nranks = config.ncores
    platform = PlatformModel.blue_waters(nranks)
    network = platform.network
    score_metric = create_metric(metric)
    cost = platform.metric_cost(score_metric)

    # -- decomposition math (no data): per-rank points and blocks ------------
    # Same layout ExperimentScenario builds: horizontal rank grid, vertical
    # column on one rank.
    px, py = factorize_ranks(nranks, ndims=2)
    nx, ny, nz = config.shape
    bx, by, bz = config.blocks_per_subdomain
    blocks_per_rank = bx * by * bz
    nblocks = blocks_per_rank * nranks
    x_sizes = _axis_sizes(nx, px)
    y_sizes = _axis_sizes(ny, py)
    # (px, py) outer product of subdomain extents, flattened in rank order.
    rank_points = (np.outer(x_sizes, y_sizes) * nz).ravel()
    points_per_block = rank_points / blocks_per_rank  # average; exact totals

    # -- scoring: vectorised PlatformModel.scoring_seconds over all ranks ----
    scoring = float(
        (cost.per_point * rank_points + cost.per_block * blocks_per_rank).max()
    )

    # -- sorting: gather per-rank pair arrays, broadcast the global sort -----
    sorting = network.gather(blocks_per_rank * _BYTES_PER_PAIR, nranks) + network.bcast(
        nblocks * _BYTES_PER_PAIR, nranks
    )

    # -- reduction: lowest-percent blocks by a seeded synthetic score --------
    rng = np.random.default_rng(config.seed)
    scores = rng.random(nblocks)
    nreduced = int(round(nblocks * percent / 100.0))
    owners = np.arange(nblocks, dtype=np.int64) // blocks_per_rank
    if nreduced:
        reduced_ids = np.argpartition(scores, nreduced - 1)[:nreduced]
    else:
        reduced_ids = np.empty(0, dtype=np.int64)
    reduced_per_rank = np.bincount(owners[reduced_ids], minlength=nranks)
    reduction = platform.reduction_seconds(int(reduced_per_rank.max()))

    # -- redistribution: round-robin deal of surviving blocks ----------------
    survivor_mask = np.ones(nblocks, dtype=bool)
    survivor_mask[reduced_ids] = False
    survivors = np.flatnonzero(survivor_mask)
    # Deterministic deal: shuffle survivors once, deal them round-robin —
    # the planner's idiom, seeded so every backend prices the same plan.
    dealt = rng.permutation(survivors)
    new_owner = np.empty(nblocks, dtype=np.int64)
    new_owner[:] = owners
    new_owner[dealt] = np.arange(dealt.size, dtype=np.int64) % nranks
    moved = dealt[new_owner[dealt] != owners[dealt]]
    if moved.size:
        block_bytes = (points_per_block[owners[moved]] * _BYTES_PER_POINT).astype(
            np.int64
        )
        matrix = np.zeros((nranks, nranks), dtype=np.int64)
        np.add.at(matrix, (owners[moved], new_owner[moved]), block_bytes)
        redistribution = network.alltoallv(matrix, nranks)
        moved_bytes = int(block_bytes.sum())
    else:
        redistribution = 0.0
        moved_bytes = 0

    # -- rendering: triangles on the post-redistribution owners --------------
    # A surviving block yields ~active_fraction of its cells as triangles;
    # reduced blocks yield none (8 corner values carry no surface).
    tri_noise = 0.5 + rng.random(survivors.size)  # [0.5, 1.5) spread
    triangles = points_per_block[owners[survivors]] * active_fraction * tri_noise
    tri_per_rank = np.bincount(
        new_owner[survivors], weights=triangles, minlength=nranks
    )
    blocks_per_rank_final = np.bincount(new_owner, minlength=nranks)
    # Reduced blocks enter the pipeline as their 8 corner values only.
    points_final = np.where(survivor_mask, points_per_block[owners], 8.0)
    points_per_rank_final = np.bincount(new_owner, weights=points_final, minlength=nranks)
    render = platform.render
    rendering = float(
        (
            render.per_rank_overhead
            + render.per_block * blocks_per_rank_final
            + render.per_point * points_per_rank_final
            + render.per_triangle * tri_per_rank
        ).max()
    )

    steps = {
        "scoring": scoring,
        "sorting": float(sorting),
        "reduction": float(reduction),
        "redistribution": float(redistribution),
        "rendering": rendering,
    }
    return {
        "name": config.name,
        "ncores": nranks,
        "shape": list(config.shape),
        "nblocks": nblocks,
        "npoints": int(rank_points.sum()),
        "metric": score_metric.name,
        "percent": float(percent),
        "nreduced": nreduced,
        "moved_bytes": moved_bytes,
        "modelled_steps": steps,
        "modelled_total": float(sum(steps.values())),
    }


def model_scaling_sweep(
    name: str,
    ranks: Sequence[int],
    mode: str = "weak",
    metric: str = "VAR",
    percent: float = 50.0,
    nsnapshots: Optional[int] = None,
    parallel: bool = True,
) -> Dict[str, object]:
    """Price a weak/strong-scaling rank sweep of the registered scenario ``name``.

    Builds one :class:`ScenarioConfig` per entry of ``ranks`` via
    :func:`scaling_variants` and prices each with
    :func:`model_scaling_point`.  Points are independent, so with
    ``parallel=True`` (and more than one pool worker) they are fanned out
    over the shared process pool; results always come back in ``ranks``
    order.

    Returns a dict with the sweep parameters and the per-point records.
    """
    variants = scaling_variants(name, ranks, mode=mode, nsnapshots=nsnapshots)
    if parallel and len(variants) > 1 and default_process_workers() > 1:
        pool = shared_process_pool()
        futures = [
            pool.submit(model_scaling_point, config, metric, percent)
            for config in variants
        ]
        points: List[Dict[str, object]] = [f.result() for f in futures]
    else:
        points = [model_scaling_point(config, metric, percent) for config in variants]
    return {
        "scenario": name,
        "mode": mode,
        "metric": metric,
        "percent": float(percent),
        "ranks": [int(r) for r in ranks],
        "points": points,
    }
