"""The built-in workload catalogue.

Importing :mod:`repro.scenarios` registers these entries (the same
convention the backend registry uses for its built-in factories).  Three
entries reproduce the configurations the repository always had — the
paper's two Blue Waters scales and the unit-test ``tiny`` — and the rest
exercise the pipeline on storm structures the paper never ran:

* ``squall_line`` — an elongated multi-core band: the interesting region is
  a long thin stripe crossing many subdomains, so scores are high along one
  diagonal band instead of one compact blob;
* ``multicell_cluster`` — several displaced supercells: multiple disjoint
  high-score regions, the workload redistribution balances best;
* ``turbulence_field`` — turbulence with no coherent storm: near-uniform
  scores stress sorting tie-breaking and give redistribution almost no
  imbalance to exploit;
* ``decaying_storm`` — reflectivity shrinks across snapshots: the
  adaptation controller has to *lower* the reduction percentage over time,
  the opposite trajectory of the growing-storm figures;
* ``blue_waters_64_fine`` — the speedup-gate configuration (64 ranks, 64
  blocks per rank), registered so the benchmarks resolve it by name.
"""

from __future__ import annotations

from typing import Dict

from repro.cm1.config import (
    DecayingStormConfig,
    MultiCellConfig,
    SquallLineConfig,
    StormConfig,
    TurbulenceFieldConfig,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import TINY_SHAPE, ScenarioConfig, ScenarioFactory


def experiment_storm() -> StormConfig:
    """Storm used by the figure-reproduction scenarios.

    Compared with the CM1 default it has stronger, finer-grained turbulence
    so that the 45 dBZ isosurface crosses many blocks — at 1/10 of the
    paper's resolution this is what keeps the per-block rendering load
    fine-grained enough for the redistribution step to balance it, as it
    does at full scale in the paper.
    """
    return StormConfig(turbulence=1.2, turbulence_scale=0.08)


def _family_factory(**defaults) -> ScenarioFactory:
    """A factory building :class:`ScenarioConfig` from defaults + overrides."""

    def factory(**overrides) -> ScenarioConfig:
        params: Dict[str, object] = dict(defaults)
        params.update(overrides)
        return ScenarioConfig(**params)

    return factory


register_scenario(
    "blue_waters_64",
    _family_factory(
        ncores=64,
        shape=(220, 220, 38),
        blocks_per_subdomain=(2, 2, 8),
        storm=experiment_storm(),
    ),
    description="The paper's 64-core supercell run at laptop scale (32 blocks/rank)",
    tags=("paper", "supercell"),
)

register_scenario(
    "blue_waters_400",
    _family_factory(
        ncores=400,
        shape=(220, 220, 38),
        blocks_per_subdomain=(2, 2, 4),
        storm=experiment_storm(),
    ),
    description="The paper's 400-core supercell run at laptop scale (16 blocks/rank)",
    tags=("paper", "supercell"),
)

register_scenario(
    "tiny",
    _family_factory(
        ncores=4,
        shape=TINY_SHAPE,
        blocks_per_subdomain=(2, 2, 1),
        nsnapshots=2,
    ),
    description="Unit-test-sized supercell (4 ranks, 44x44x12 grid)",
    tags=("test", "supercell"),
)

register_scenario(
    "blue_waters_64_fine",
    # Deliberately the CM1 default storm (no experiment_storm override):
    # this reproduces byte-for-byte the configuration the speedup gates
    # have always measured.
    _family_factory(
        ncores=64,
        shape=(220, 220, 38),
        blocks_per_subdomain=(4, 4, 4),
        nsnapshots=1,
    ),
    description="64-core supercell with 64 blocks/rank (the speedup-gate scale)",
    tags=("paper", "supercell", "benchmark"),
)

register_scenario(
    "blue_waters_weak_1024",
    # The 64-core supercell weak-scaled to 1024 ranks (sqrt(1024/64) = 4x
    # per horizontal axis).  Far beyond what the data path can materialise —
    # these entries exist for the cost-model-driven sweeps
    # (repro.scenarios.sweep); parity tests shrink them to tiny scale like
    # any other entry.
    _family_factory(
        ncores=1024,
        shape=(880, 880, 38),
        blocks_per_subdomain=(2, 2, 8),
        nsnapshots=1,
        storm=experiment_storm(),
    ),
    description="Weak-scaled supercell at 1024 virtual ranks (model-driven sweeps)",
    tags=("paper", "supercell", "scaling", "weak"),
)

register_scenario(
    "blue_waters_weak_10k",
    _family_factory(
        ncores=10000,
        shape=(2750, 2750, 38),
        blocks_per_subdomain=(2, 2, 8),
        nsnapshots=1,
        storm=experiment_storm(),
    ),
    description="Weak-scaled supercell at 10,000 virtual ranks (model-driven sweeps)",
    tags=("paper", "supercell", "scaling", "weak"),
)

register_scenario(
    "squall_line",
    _family_factory(
        ncores=16,
        shape=(88, 88, 24),
        blocks_per_subdomain=(2, 2, 2),
        storm=SquallLineConfig(turbulence=1.0, turbulence_scale=0.08),
    ),
    description="Elongated multi-core band crossing the domain diagonally",
    tags=("storm-family", "squall-line"),
)

register_scenario(
    "multicell_cluster",
    _family_factory(
        ncores=16,
        shape=(88, 88, 24),
        blocks_per_subdomain=(2, 2, 2),
        storm=MultiCellConfig(turbulence=1.0, turbulence_scale=0.1),
    ),
    description="Cluster of displaced supercells (disjoint interest regions)",
    tags=("storm-family", "multicell"),
)

register_scenario(
    "turbulence_field",
    _family_factory(
        ncores=16,
        shape=(88, 88, 24),
        blocks_per_subdomain=(2, 2, 2),
        storm=TurbulenceFieldConfig(),
    ),
    description="No coherent storm: near-uniform block scores (sorting stress)",
    tags=("storm-family", "stress", "uniform-scores"),
)

register_scenario(
    "decaying_storm",
    _family_factory(
        ncores=16,
        shape=(88, 88, 24),
        blocks_per_subdomain=(2, 2, 2),
        nsnapshots=12,
        storm=DecayingStormConfig(turbulence=1.0, turbulence_scale=0.08),
    ),
    description="Supercell past its peak: rendering load falls every snapshot",
    tags=("storm-family", "adaptive", "decaying"),
)
