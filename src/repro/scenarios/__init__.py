"""The scenario subsystem: a named registry of workload families.

The paper's evaluation is one supercell at two core counts; this package
makes workloads first-class instead.  A *scenario* is a named, tagged,
parameterised workload family — storm structure, grid shape, rank count,
block decomposition — registered in a global registry
(:func:`register_scenario`, mirroring the step-backend registry of
:mod:`repro.core.backends`) and resolvable by every consumer:

* ``repro.experiments.common`` builds :class:`ExperimentScenario` objects
  from registered names (the classic ``blue_waters_64`` / ``tiny``
  constructors now resolve through the registry);
* ``python -m repro list`` / ``python -m repro run <scenario>`` expose the
  catalogue on the command line;
* ``tests/test_scenarios.py`` parameterises its serial/vectorized/parallel
  parity sweep over :func:`scenario_names`, so every newly registered
  workload is parity-tested for free;
* :func:`scaling_variants` derives weak/strong-scaling rank sweeps from any
  registered entry, and :func:`model_scaling_sweep` prices those sweeps
  through the cost models alone — which is how rank counts like the
  registered ``blue_waters_weak_10k`` (10,000 virtual ranks) stay tractable.

Importing this package registers the built-in catalogue
(:mod:`repro.scenarios.catalog`): the paper's two Blue Waters scales, the
test-sized ``tiny``, the benchmark-scale ``blue_waters_64_fine``, and four
storm families the paper never ran (``squall_line``, ``multicell_cluster``,
``turbulence_field``, ``decaying_storm``).
"""

from repro.scenarios.registry import (
    create_scenario_config,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_specs,
)
from repro.scenarios.scaling import scaling_variants
from repro.scenarios.spec import ScenarioConfig, ScenarioFactory, ScenarioSpec
from repro.scenarios.sweep import model_scaling_point, model_scaling_sweep

# Importing the catalogue registers the built-in workloads.
import repro.scenarios.catalog  # noqa: E402,F401  (registration side effect)

__all__ = [
    "ScenarioConfig",
    "ScenarioFactory",
    "ScenarioSpec",
    "create_scenario_config",
    "get_scenario",
    "model_scaling_point",
    "model_scaling_sweep",
    "register_scenario",
    "scaling_variants",
    "scenario_names",
    "scenario_specs",
]
