"""Scaling sweeps: derive weak/strong-scaling variants of any workload.

The paper evaluates two fixed core counts; this helper turns any registered
scenario into a rank sweep:

* **strong** scaling keeps the global grid fixed and varies the rank count
  (each rank's subdomain shrinks — the paper's own 64 vs. 400 contrast);
* **weak** scaling grows the horizontal grid with the rank count so the
  per-rank subdomain stays (approximately) constant — CM1 decomposes
  horizontally, so only the x/y extents scale, by ``sqrt(ranks ratio)``.

Variants are plain :class:`ScenarioConfig` objects (name-stamped
``"<base>[strong@N]"``), directly consumable by
``ExperimentScenario(config)`` or registrable as scenarios of their own.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.grid.decomposition import factorize_ranks
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioConfig

__all__ = ["scaling_variants"]

#: Supported sweep modes.
SCALING_MODES: Tuple[str, ...] = ("strong", "weak")


def _minimum_shape(
    ncores: int, blocks_per_subdomain: Tuple[int, int, int]
) -> Tuple[int, int, int]:
    """Smallest grid the decomposition admits at ``ncores`` ranks.

    The horizontal rank grid is ``factorize_ranks(ncores, ndims=2)`` with the
    vertical column kept on one rank — the same layout
    ``ExperimentScenario`` builds.
    """
    px, py = factorize_ranks(ncores, ndims=2)
    bx, by, bz = blocks_per_subdomain
    return (px * bx, py * by, bz)


def scaling_variants(
    name: str,
    ranks: Sequence[int],
    mode: str = "strong",
    nsnapshots: Optional[int] = None,
) -> List[ScenarioConfig]:
    """Build ``mode``-scaling variants of the registered scenario ``name``.

    Parameters
    ----------
    name:
        A registered scenario name (the sweep's baseline is that scenario's
        default configuration).
    ranks:
        Rank counts to derive variants for, one config per entry.
    mode:
        ``"strong"`` (fixed grid) or ``"weak"`` (grid grows with ranks).
    nsnapshots:
        Optional snapshot-count override applied to every variant.
    """
    key = mode.strip().lower()
    if key not in SCALING_MODES:
        raise ValueError(f"mode must be one of {SCALING_MODES}, got {mode!r}")
    if not ranks:
        raise ValueError("ranks must not be empty")
    base = get_scenario(name).build(nsnapshots=nsnapshots)
    variants: List[ScenarioConfig] = []
    for ncores in ranks:
        ncores = int(ncores)
        if ncores < 1:
            raise ValueError(f"rank counts must be >= 1, got {ncores}")
        minimum = _minimum_shape(ncores, base.blocks_per_subdomain)
        if key == "weak":
            factor = math.sqrt(ncores / base.ncores)
            # Half-up rounding, not banker's round(): a rank ratio landing a
            # scaled extent exactly on .5 must grow the grid, never shrink it
            # towards an even value (round(22.5) == 22 would under-provision
            # the variant relative to the weak-scaling contract).
            shape = (
                math.floor(base.shape[0] * factor + 0.5),
                math.floor(base.shape[1] * factor + 0.5),
                base.shape[2],
            )
            # Rounding may undershoot the decomposition's floor by a point
            # or two; bumping it keeps the per-rank load within rounding of
            # the weak-scaling contract.
            shape = tuple(max(s, m) for s, m in zip(shape, minimum))
        else:
            # Strong scaling *means* a fixed problem size: if the grid
            # cannot host this many ranks, growing it silently would make
            # the sweep incomparable — refuse instead.
            shape = base.shape
            if any(s < m for s, m in zip(shape, minimum)):
                raise ValueError(
                    f"strong-scaling variant of {base.name or name!r} at "
                    f"{ncores} ranks needs a grid of at least {minimum}, "
                    f"but the scenario's grid is {shape}"
                )
        variants.append(
            replace(
                base,
                ncores=ncores,
                shape=shape,
                name=f"{base.name}[{key}@{ncores}]",
            )
        )
    return variants
