"""Scenario specifications: workload parameters plus registry metadata.

:class:`ScenarioConfig` is the canonical parameter record of one workload —
rank count, grid shape, block decomposition, snapshot count, and the storm
structure driving the synthetic CM1 data.  It used to live in
:mod:`repro.experiments.common` (which still re-exports it unchanged); it
moved here so the scenario layer does not depend on the experiment drivers.

:class:`ScenarioSpec` is a registry entry wrapping a config *factory* with
the metadata the CLI and the test sweeps need: a name, a one-line
description, tags, and default rank/snapshot counts.  ``spec.build(...)``
produces a :class:`ScenarioConfig` with any subset of the parameters
overridden — which is how one registered workload family serves paper-scale
benchmarks, tiny-scale parity tests, and scaling sweeps alike.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple

__all__ = ["TINY_SHAPE", "ScenarioConfig", "ScenarioFactory", "ScenarioSpec"]

#: The unit-test grid: shared by the registered ``tiny`` workload and by
#: :meth:`ScenarioSpec.tiny`, which shrinks any workload to this scale.
TINY_SHAPE: Tuple[int, int, int] = (44, 44, 12)


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of an experiment scenario.

    Hashable (the storm override is a frozen dataclass), so a fully resolved
    config is usable as a cache key — scenario identity *is* the config.
    """

    ncores: int = 64
    shape: Tuple[int, int, int] = (220, 220, 38)
    blocks_per_subdomain: Tuple[int, int, int] = (2, 2, 2)
    nsnapshots: int = 10
    isosurface_level: float = 45.0
    field_name: str = "dbz"
    seed: int = 2016
    #: Optional storm-structure override (None = CM1Config's default supercell).
    storm: Optional[object] = None
    #: Registry name the config was built from ("" for ad-hoc configs).
    name: str = ""

    def __post_init__(self) -> None:
        if self.ncores < 1:
            raise ValueError(f"ncores must be >= 1, got {self.ncores}")
        if self.nsnapshots < 1:
            raise ValueError(f"nsnapshots must be >= 1, got {self.nsnapshots}")

    # -- registry-backed constructors (kept for call-site compatibility) -----

    @classmethod
    def blue_waters_64(cls, nsnapshots: int = 10) -> "ScenarioConfig":
        """The 64-core configuration of the paper at laptop scale."""
        from repro.scenarios.registry import create_scenario_config

        return create_scenario_config("blue_waters_64", nsnapshots=nsnapshots)

    @classmethod
    def blue_waters_400(cls, nsnapshots: int = 10) -> "ScenarioConfig":
        """The 400-core configuration of the paper at laptop scale."""
        from repro.scenarios.registry import create_scenario_config

        return create_scenario_config("blue_waters_400", nsnapshots=nsnapshots)

    @classmethod
    def tiny(cls, nranks: int = 4, nsnapshots: int = 2) -> "ScenarioConfig":
        """A unit-test-sized configuration."""
        from repro.scenarios.registry import create_scenario_config

        return create_scenario_config("tiny", ncores=nranks, nsnapshots=nsnapshots)


#: A scenario factory accepts keyword overrides (``ncores``, ``nsnapshots``,
#: ``shape``, ``blocks_per_subdomain``, ``seed``, ...) and returns the
#: resolved :class:`ScenarioConfig`.
ScenarioFactory = Callable[..., ScenarioConfig]


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered workload family.

    Attributes
    ----------
    name:
        Registry key (lower-case, unique).
    factory:
        Builds the family's :class:`ScenarioConfig`; keyword overrides are
        forwarded verbatim.
    description:
        One-line description shown by ``python -m repro list``.
    tags:
        Free-form labels ("paper", "storm-family", "stress", ...).
    default_ranks, default_snapshots:
        Scale the factory produces when called without overrides.
    """

    name: str
    factory: ScenarioFactory
    description: str = ""
    tags: Tuple[str, ...] = ()
    default_ranks: int = 64
    default_snapshots: int = 10

    def build(self, **overrides) -> ScenarioConfig:
        """Build the scenario config, applying non-None keyword overrides."""
        clean = {key: value for key, value in overrides.items() if value is not None}
        config = self.factory(**clean)
        if config.name != self.name:
            config = replace(config, name=self.name)
        return config

    def tiny(self, nranks: int = 4, nsnapshots: int = 2) -> ScenarioConfig:
        """The family at unit-test scale: a 44×44×12 grid on ``nranks`` ranks.

        Only the grid and rank/snapshot counts shrink; the storm structure
        and the family's block decomposition are preserved, so tiny-scale
        tests exercise the same workload shape the full scenario has.
        """
        return self.build(ncores=nranks, nsnapshots=nsnapshots, shape=TINY_SHAPE)
