"""Multivariate scoring (the paper's "multivariate scores" future-work item).

A :class:`MultiFieldScorer` combines per-field scores of the *same block
extent* across several fields (e.g. reflectivity plus vertical wind), either
as a weighted sum of normalised scores or as the maximum.  Normalisation is
per-field max over the blocks of the current iteration, so fields with very
different dynamic ranges contribute comparably.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.metrics.base import ScoreMetric


class MultiFieldScorer:
    """Combine the scores of several fields into one per-block score.

    Parameters
    ----------
    metrics:
        Mapping field name -> :class:`ScoreMetric` used for that field.
    weights:
        Optional mapping field name -> weight (default 1.0 each).
    mode:
        ``"sum"`` (weighted sum of normalised scores, default) or ``"max"``.
    """

    def __init__(
        self,
        metrics: Mapping[str, ScoreMetric],
        weights: Mapping[str, float] | None = None,
        mode: str = "sum",
    ) -> None:
        if not metrics:
            raise ValueError("at least one field metric is required")
        if mode not in ("sum", "max"):
            raise ValueError(f"mode must be 'sum' or 'max', got {mode!r}")
        self.metrics = dict(metrics)
        self.weights = {name: 1.0 for name in self.metrics}
        if weights:
            unknown = set(weights) - set(self.metrics)
            if unknown:
                raise ValueError(f"weights given for unknown fields: {sorted(unknown)}")
            self.weights.update({k: float(v) for k, v in weights.items()})
        self.mode = mode

    def score_blocks(
        self, per_field_blocks: Mapping[str, Sequence[np.ndarray]]
    ) -> List[float]:
        """Score blocks given per-field lists of equal length.

        ``per_field_blocks[field][i]`` must be the data of block ``i`` in that
        field.  Returns one combined score per block index.
        """
        missing = set(self.metrics) - set(per_field_blocks)
        if missing:
            raise ValueError(f"missing data for fields: {sorted(missing)}")
        lengths = {len(per_field_blocks[name]) for name in self.metrics}
        if len(lengths) != 1:
            raise ValueError(f"inconsistent block counts across fields: {lengths}")
        (nblocks,) = lengths
        if nblocks == 0:
            return []

        per_field_scores: Dict[str, np.ndarray] = {}
        for name, metric in self.metrics.items():
            scores = np.asarray(
                [metric.score_block(b) for b in per_field_blocks[name]], dtype=np.float64
            )
            peak = scores.max()
            per_field_scores[name] = scores / peak if peak > 0 else scores
        combined = np.zeros(nblocks, dtype=np.float64)
        if self.mode == "sum":
            for name, scores in per_field_scores.items():
                combined += self.weights[name] * scores
        else:
            stacked = np.stack(
                [self.weights[name] * scores for name, scores in per_field_scores.items()]
            )
            combined = stacked.max(axis=0)
        return [float(v) for v in combined]
