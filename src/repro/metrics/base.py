"""Metric interface and cost description."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.utils.validation import ensure_3d, ensure_float_array


@dataclass(frozen=True)
class MetricCost:
    """Analytic cost of evaluating a metric.

    The cost is modelled as ``seconds = per_point * npoints + per_block`` per
    block, per core, in Blue Waters seconds.  The per-point coefficients are
    calibrated from the paper's Table I (see
    :mod:`repro.perfmodel.calibration`).
    """

    per_point: float
    per_block: float = 0.0

    def seconds(self, npoints: int) -> float:
        """Modelled seconds to score one block of ``npoints`` values."""
        if npoints < 0:
            raise ValueError(f"npoints must be >= 0, got {npoints}")
        return self.per_point * npoints + self.per_block


class ScoreMetric(abc.ABC):
    """A block-relevance scoring function.

    Higher scores mean "more relevant / keep this block"; the reduction step
    removes the blocks with the *lowest* scores.
    """

    #: Registry name (uppercase, as the paper labels them: RANGE, VAR, ...).
    name: str = "METRIC"
    #: Modelled evaluation cost (Blue Waters seconds); see :class:`MetricCost`.
    cost: MetricCost = MetricCost(per_point=5.0e-8)
    #: Whether :meth:`score_batch` is a true vectorised implementation, i.e.
    #: stacking blocks into a batch buys real work sharing (False means it
    #: falls back to a per-block loop, so engines skip the stacking copies).
    #: All built-in metrics except LOCAL_ENTROPY provide one — including the
    #: coder-based FPZIP/ZFP/LZ/LEA scorers, whose batched paths compute
    #: encoded sizes for the whole batch in one pass.
    supports_batch: bool = False

    @abc.abstractmethod
    def score_block(self, data: np.ndarray) -> float:
        """Score one 3-D block of values."""

    def score_blocks(self, blocks: Iterable[np.ndarray]) -> List[float]:
        """Score a sequence of blocks (override for vectorised variants)."""
        return [self.score_block(b) for b in blocks]

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        """Score a stacked ``(nblocks, sx, sy, sz)`` batch of blocks.

        Array-friendly metrics override this with a single vectorised pass
        over the batch; the default delegates to :meth:`score_blocks` (so a
        user metric that overrides only ``score_blocks`` behaves identically
        under both execution engines).  Either way the result is bitwise
        identical to scoring the blocks one at a time (the vectorised
        overrides are written to share the exact arithmetic of their scalar
        counterparts), so the engines can be swapped without perturbing
        reduction decisions.
        """
        arr = self._prepare_batch(batch)
        return np.array(
            self.score_blocks([arr[i] for i in range(arr.shape[0])]),
            dtype=np.float64,
        )

    def modelled_seconds(self, npoints: int) -> float:
        """Modelled cost to score one block of ``npoints`` values."""
        return self.cost.seconds(npoints)

    # -- shared validation ---------------------------------------------------

    @staticmethod
    def _prepare(data: np.ndarray) -> np.ndarray:
        """Validate a block and return it as a float ndarray."""
        return ensure_float_array(ensure_3d(data, "block"), "block")

    @staticmethod
    def _prepare_batch(batch: np.ndarray) -> np.ndarray:
        """Validate a stacked batch and return it as a float ndarray.

        Applies the same dtype policy as :meth:`_prepare` (floating dtypes
        preserved, everything else promoted to float64) so batched scores
        match the per-block path exactly.
        """
        arr = np.asarray(batch)
        if arr.ndim != 4:
            raise ValueError(
                f"batch must be 4-D (nblocks, sx, sy, sz), got shape {arr.shape}"
            )
        return ensure_float_array(arr, "batch")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r})"
