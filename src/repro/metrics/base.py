"""Metric interface and cost description."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.utils.validation import ensure_3d, ensure_float_array


@dataclass(frozen=True)
class MetricCost:
    """Analytic cost of evaluating a metric.

    The cost is modelled as ``seconds = per_point * npoints + per_block`` per
    block, per core, in Blue Waters seconds.  The per-point coefficients are
    calibrated from the paper's Table I (see
    :mod:`repro.perfmodel.calibration`).
    """

    per_point: float
    per_block: float = 0.0

    def seconds(self, npoints: int) -> float:
        """Modelled seconds to score one block of ``npoints`` values."""
        if npoints < 0:
            raise ValueError(f"npoints must be >= 0, got {npoints}")
        return self.per_point * npoints + self.per_block


class ScoreMetric(abc.ABC):
    """A block-relevance scoring function.

    Higher scores mean "more relevant / keep this block"; the reduction step
    removes the blocks with the *lowest* scores.
    """

    #: Registry name (uppercase, as the paper labels them: RANGE, VAR, ...).
    name: str = "METRIC"
    #: Modelled evaluation cost (Blue Waters seconds); see :class:`MetricCost`.
    cost: MetricCost = MetricCost(per_point=5.0e-8)

    @abc.abstractmethod
    def score_block(self, data: np.ndarray) -> float:
        """Score one 3-D block of values."""

    def score_blocks(self, blocks: Iterable[np.ndarray]) -> List[float]:
        """Score a sequence of blocks (override for vectorised variants)."""
        return [self.score_block(b) for b in blocks]

    def modelled_seconds(self, npoints: int) -> float:
        """Modelled cost to score one block of ``npoints`` values."""
        return self.cost.seconds(npoints)

    # -- shared validation ---------------------------------------------------

    @staticmethod
    def _prepare(data: np.ndarray) -> np.ndarray:
        """Validate a block and return it as a float ndarray."""
        return ensure_float_array(ensure_3d(data, "block"), "block")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r})"
