"""LEA: the lightweight (bytewise) entropy analyzer.

LEA avoids the histogram-tuning problem of the classical entropy metric by
treating each float as an array of bytes: it computes, independently for each
byte position, the entropy of that byte over the whole block (a byte takes 256
values, so the probability of value ``i`` is just its frequency), and returns
the **sum** of the per-byte entropies.  No range or bin count needs to be
known in advance, and the computation is a handful of vectorised bincounts —
which is why LEA sits near the bottom of Table I's cost column.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import MetricCost, ScoreMetric
from repro.utils.histogram import shannon_entropy


def bytewise_entropies(data: np.ndarray) -> np.ndarray:
    """Per-byte-position entropies of a floating-point array.

    Returns an array of length 4 (float32) or 8 (float64): entry ``b`` is the
    Shannon entropy of the ``b``-th byte of every value in ``data``.
    """
    arr = np.asarray(data)
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float32)
    flat = np.ascontiguousarray(arr).reshape(-1)
    itemsize = flat.dtype.itemsize
    as_bytes = flat.view(np.uint8).reshape(flat.size, itemsize)
    entropies = np.empty(itemsize, dtype=np.float64)
    for b in range(itemsize):
        counts = np.bincount(as_bytes[:, b], minlength=256)
        entropies[b] = shannon_entropy(counts)
    return entropies


def bytewise_entropies_batch(batch: np.ndarray) -> np.ndarray:
    """Per-byte-position entropies of every block of a 4-D stacked batch.

    Returns ``(nblocks, itemsize)`` entropies computed from one offset
    ``bincount`` over the whole batch; row ``i`` equals
    ``bytewise_entropies(batch[i])`` bitwise (same counts, same
    :func:`shannon_entropy` arithmetic).
    """
    arr = np.asarray(batch)
    if arr.ndim != 4:
        raise ValueError(f"batch must be 4-D (nblocks, sx, sy, sz), got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float32)
    nblocks = arr.shape[0]
    flat = np.ascontiguousarray(arr).reshape(nblocks, -1)
    itemsize = flat.dtype.itemsize
    nvalues = flat.shape[1]
    entropies = np.empty((nblocks, itemsize), dtype=np.float64)
    if nblocks == 0:
        return entropies
    if nvalues == 0:
        entropies.fill(0.0)
        return entropies
    as_bytes = flat.view(np.uint8).reshape(nblocks, nvalues, itemsize)
    # One bincount per byte position, each over all blocks at once: every
    # block gets its own 256-wide segment via the offsets.  Working one byte
    # plane at a time keeps the int64 index temporary at (nblocks, nvalues)
    # rather than materialising the whole (nblocks, nvalues, itemsize) batch
    # in int64 — this runs on the engines' scoring hot path.
    block_offsets = np.arange(nblocks, dtype=np.int64)[:, None] * 256
    for b in range(itemsize):
        idx = as_bytes[:, :, b].astype(np.int64) + block_offsets
        counts = np.bincount(idx.ravel(), minlength=nblocks * 256).reshape(
            nblocks, 256
        )
        # Per-row scalar shannon_entropy on purpose: the entropy sums a
        # zero-filtered, variable-length probability array, so no uniform
        # axis reduction reproduces the scalar path bitwise (same trade-off
        # as ITL's batched histograms).
        for i in range(nblocks):
            entropies[i, b] = shannon_entropy(counts[i])
    return entropies


class BytewiseEntropyMetric(ScoreMetric):
    """LEA score: sum of the per-byte-position entropies of the block."""

    name = "LEA"
    # Table I: 2.03 s on 64 cores -> ~7.1e-8 s per point.
    cost = MetricCost(per_point=7.1e-8)
    supports_batch = True

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return float(bytewise_entropies(arr).sum())

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        """LEA scores of a stacked batch from one bincount over all blocks.

        The per-(block, byte) histograms are identical to the scalar path's,
        and each block's entropies are summed as the same-length float64
        array, so the scores are bitwise equal to :meth:`score_block`.
        """
        arr = self._prepare_batch(batch)
        entropies = bytewise_entropies_batch(arr)
        # Each row is summed exactly as the scalar path sums its 1-D entropy
        # array (same length, same pairwise order).
        return np.array([float(row.sum()) for row in entropies], dtype=np.float64)
