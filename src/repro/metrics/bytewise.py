"""LEA: the lightweight (bytewise) entropy analyzer.

LEA avoids the histogram-tuning problem of the classical entropy metric by
treating each float as an array of bytes: it computes, independently for each
byte position, the entropy of that byte over the whole block (a byte takes 256
values, so the probability of value ``i`` is just its frequency), and returns
the **sum** of the per-byte entropies.  No range or bin count needs to be
known in advance, and the computation is a handful of vectorised bincounts —
which is why LEA sits near the bottom of Table I's cost column.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import MetricCost, ScoreMetric
from repro.utils.histogram import shannon_entropy


def bytewise_entropies(data: np.ndarray) -> np.ndarray:
    """Per-byte-position entropies of a floating-point array.

    Returns an array of length 4 (float32) or 8 (float64): entry ``b`` is the
    Shannon entropy of the ``b``-th byte of every value in ``data``.
    """
    arr = np.asarray(data)
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float32)
    flat = np.ascontiguousarray(arr).reshape(-1)
    itemsize = flat.dtype.itemsize
    as_bytes = flat.view(np.uint8).reshape(flat.size, itemsize)
    entropies = np.empty(itemsize, dtype=np.float64)
    for b in range(itemsize):
        counts = np.bincount(as_bytes[:, b], minlength=256)
        entropies[b] = shannon_entropy(counts)
    return entropies


class BytewiseEntropyMetric(ScoreMetric):
    """LEA score: sum of the per-byte-position entropies of the block."""

    name = "LEA"
    # Table I: 2.03 s on 64 cores -> ~7.1e-8 s per point.
    cost = MetricCost(per_point=7.1e-8)

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return float(bytewise_entropies(arr).sum())
