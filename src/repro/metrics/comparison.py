"""Pairwise rank-agreement analysis of metrics (Fig. 3).

The paper compares metrics by the *ordering* they induce on blocks: for each
pair of metrics, every block is plotted at (rank under metric A, rank under
metric B).  Diagonal clouds mean the metrics agree; the characteristic lower-
left diagonal segment corresponds to the quiet blocks all metrics agree are
uninteresting (they share the metric's minimum score and are therefore
ordered by block id under every metric — the paper's tie-break rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.metrics.base import ScoreMetric


def rank_blocks(scores: Mapping[int, float]) -> Dict[int, int]:
    """Rank blocks by ascending (score, id); returns block id -> rank.

    Rank 0 is the least relevant block.  Ties in score are broken by block id,
    exactly as the pipeline's global sort does.
    """
    ordered = sorted(scores.items(), key=lambda kv: (kv[1], kv[0]))
    return {block_id: rank for rank, (block_id, _) in enumerate(ordered)}


def spearman_rank_correlation(ranks_a: Sequence[int], ranks_b: Sequence[int]) -> float:
    """Spearman correlation between two rank assignments of the same blocks."""
    a = np.asarray(ranks_a, dtype=np.float64)
    b = np.asarray(ranks_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"rank arrays differ in shape: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two blocks to correlate")
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt((a**2).sum() * (b**2).sum())
    if denom == 0:
        return 0.0
    return float((a * b).sum() / denom)


@dataclass
class MetricComparison:
    """Rank agreement between one pair of metrics."""

    metric_a: str
    metric_b: str
    #: (rank under A, rank under B) for every block, ordered by block id.
    rank_pairs: np.ndarray
    spearman: float

    @property
    def nblocks(self) -> int:
        """Number of blocks compared."""
        return int(self.rank_pairs.shape[0])

    def agreement_fraction(self, tolerance_fraction: float = 0.1) -> float:
        """Fraction of blocks whose two ranks differ by less than a tolerance.

        ``tolerance_fraction`` is expressed as a fraction of the number of
        blocks (0.1 = ranks within 10% of each other).
        """
        if not (0.0 < tolerance_fraction <= 1.0):
            raise ValueError(
                f"tolerance_fraction must be in (0, 1], got {tolerance_fraction}"
            )
        tol = tolerance_fraction * self.nblocks
        diffs = np.abs(self.rank_pairs[:, 0] - self.rank_pairs[:, 1])
        return float(np.mean(diffs <= tol))


def compare_metrics(
    per_metric_scores: Mapping[str, Mapping[int, float]]
) -> List[MetricComparison]:
    """Build the pairwise comparisons for all metric pairs (15 pairs for 6 metrics).

    Parameters
    ----------
    per_metric_scores:
        Mapping metric name -> (block id -> score).  All metrics must have
        scored the same set of blocks.
    """
    names = list(per_metric_scores)
    if len(names) < 2:
        raise ValueError("need at least two metrics to compare")
    block_sets = {name: set(scores) for name, scores in per_metric_scores.items()}
    reference = block_sets[names[0]]
    for name, ids in block_sets.items():
        if ids != reference:
            raise ValueError(f"metric {name!r} scored a different set of blocks")
    block_ids = sorted(reference)
    ranks = {
        name: rank_blocks(per_metric_scores[name]) for name in names
    }
    comparisons = []
    for name_a, name_b in combinations(names, 2):
        pairs = np.asarray(
            [[ranks[name_a][bid], ranks[name_b][bid]] for bid in block_ids],
            dtype=np.int64,
        )
        rho = spearman_rank_correlation(pairs[:, 0], pairs[:, 1])
        comparisons.append(
            MetricComparison(
                metric_a=name_a, metric_b=name_b, rank_pairs=pairs, spearman=rho
            )
        )
    return comparisons


def score_blocks_with_metrics(
    metrics: Sequence[ScoreMetric], blocks: Sequence
) -> Dict[str, Dict[int, float]]:
    """Score the same blocks with several metrics.

    ``blocks`` is a sequence of :class:`~repro.grid.block.Block`.  Returns the
    nested mapping expected by :func:`compare_metrics`.
    """
    out: Dict[str, Dict[int, float]] = {}
    for metric in metrics:
        out[metric.name] = {
            block.block_id: metric.score_block(block.data) for block in blocks
        }
    return out
