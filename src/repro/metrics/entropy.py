"""Information-theoretic metrics: histogram entropy (ITL) and local entropy.

The histogram entropy of a block is ``E = -sum p_i log2 p_i`` over the bins of
a histogram built with the *same range and bin count on every process* —
otherwise scores are not comparable across blocks.  The paper uses the known
physical range of the reflectivity ([-60, 80] dBZ) and found 256 bins to be a
reasonable default among 32/256/1024.

The local entropy variant (entropy of a neighbourhood around each point,
averaged over the block) is also provided; the paper evaluated it and found it
too slow relative to the rest of the pipeline, which the calibrated cost
reflects.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cm1.reflectivity import DBZ_MAX, DBZ_MIN
from repro.metrics.base import MetricCost, ScoreMetric
from repro.utils.histogram import (
    fixed_range_histogram,
    fixed_range_histogram_batch,
    shannon_entropy,
)


class HistogramEntropyMetric(ScoreMetric):
    """ITL-style Shannon entropy of a fixed-range histogram of the block.

    Parameters
    ----------
    bins:
        Number of histogram bins (the paper tried 32, 256, and 1,024 and used
        256).
    value_range:
        Common value range used by all processes; defaults to the physical
        reflectivity range [-60, 80] dBZ.
    """

    name = "ITL"
    # Table I: 13.30 s on 64 cores -> ~4.6e-7 s per point.
    cost = MetricCost(per_point=4.63e-7)
    supports_batch = True

    def __init__(
        self,
        bins: int = 256,
        value_range: Tuple[float, float] = (DBZ_MIN, DBZ_MAX),
    ) -> None:
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        lo, hi = value_range
        if not hi > lo:
            raise ValueError(f"invalid value_range: {value_range}")
        self.bins = int(bins)
        self.value_range = (float(lo), float(hi))

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        counts = fixed_range_histogram(arr, self.bins, self.value_range)
        return shannon_entropy(counts)

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = self._prepare_batch(batch)
        counts = fixed_range_histogram_batch(
            arr.reshape(arr.shape[0], -1), self.bins, self.value_range
        )
        # The histograms are the expensive part and are fully vectorised; the
        # per-row entropy reuses the scalar helper so the scores are bitwise
        # identical to the per-block path.
        return np.array([shannon_entropy(row) for row in counts], dtype=np.float64)


class LocalEntropyMetric(ScoreMetric):
    """Mean local (neighbourhood) entropy over the block.

    For every point, the entropy of the histogram of its cubic neighbourhood
    is computed; the block score is the mean.  Accurate but expensive — the
    paper discarded it for in situ use, and its calibrated cost (an order of
    magnitude above TRILIN) encodes that conclusion.
    """

    name = "LOCAL_ENTROPY"
    cost = MetricCost(per_point=5.0e-6)

    def __init__(
        self,
        bins: int = 32,
        value_range: Tuple[float, float] = (DBZ_MIN, DBZ_MAX),
        radius: int = 1,
        stride: int = 2,
    ) -> None:
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        lo, hi = value_range
        if not hi > lo:
            raise ValueError(f"invalid value_range: {value_range}")
        self.bins = int(bins)
        self.value_range = (float(lo), float(hi))
        self.radius = int(radius)
        self.stride = int(stride)

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        r = self.radius
        entropies = []
        for i in range(r, arr.shape[0] - r, self.stride):
            for j in range(r, arr.shape[1] - r, self.stride):
                for k in range(r, arr.shape[2] - r, self.stride):
                    neigh = arr[i - r : i + r + 1, j - r : j + r + 1, k - r : k + r + 1]
                    counts = fixed_range_histogram(neigh, self.bins, self.value_range)
                    entropies.append(shannon_entropy(counts))
        if not entropies:
            counts = fixed_range_histogram(arr, self.bins, self.value_range)
            return shannon_entropy(counts)
        return float(np.mean(entropies))
