"""Block-relevance scoring metrics.

Section IV-B of the paper introduces a family of fast, generic procedures that
score a block of data by its variability, using statistics, information
theory, linear algebra, and floating-point compressors.  The representative
subset the paper reports on is reproduced here under the same names:

========  =====================================================
``RANGE``  max - min of the block                     (:class:`RangeMetric`)
``VAR``    variance of the block                      (:class:`VarianceMetric`)
``ITL``    histogram (Shannon) entropy                (:class:`HistogramEntropyMetric`)
``LEA``    lightweight bytewise entropy analyzer      (:class:`BytewiseEntropyMetric`)
``FPZIP``  floating-point compression ratio           (:class:`CompressionRatioMetric`)
``TRILIN`` trilinear interpolation error              (:class:`TrilinearErrorMetric`)
========  =====================================================

plus the variants the paper mentions but does not plot (ZFP- and LZ-based
scorers, local entropy, multivariate combinations).  All metrics return
"higher = more relevant" scores and expose three equivalent scoring paths:
``score_block`` (one block), ``score_blocks`` (a sequence), and
``score_batch`` (a stacked ``(nblocks, sx, sy, sz)`` array).  The
array-friendly metrics (RANGE, VAR, STD, ITL, TRILIN) implement
``score_batch`` as a single vectorised pass producing bitwise-identical
scores; the coder-based metrics fall back to the per-block loop.  :class:`MetricRegistry` provides name-based
construction, and :mod:`repro.metrics.comparison` / :mod:`repro.metrics.scoremap`
implement the rank-agreement and scoremap analyses of Figures 3 and 4.
"""

from repro.metrics.base import ScoreMetric, MetricCost
from repro.metrics.statistics import (
    PythonVarianceMetric,
    RangeMetric,
    StdDevMetric,
    VarianceMetric,
)
from repro.metrics.entropy import HistogramEntropyMetric, LocalEntropyMetric
from repro.metrics.bytewise import BytewiseEntropyMetric
from repro.metrics.interpolation import TrilinearErrorMetric
from repro.metrics.compression import CompressionRatioMetric
from repro.metrics.multifield import MultiFieldScorer
from repro.metrics.registry import MetricRegistry, default_registry, create_metric
from repro.metrics.scoremap import ScoreMap, compute_scoremap
from repro.metrics.comparison import (
    MetricComparison,
    rank_blocks,
    compare_metrics,
    spearman_rank_correlation,
)

__all__ = [
    "ScoreMetric",
    "MetricCost",
    "RangeMetric",
    "PythonVarianceMetric",
    "VarianceMetric",
    "StdDevMetric",
    "HistogramEntropyMetric",
    "LocalEntropyMetric",
    "BytewiseEntropyMetric",
    "TrilinearErrorMetric",
    "CompressionRatioMetric",
    "MultiFieldScorer",
    "MetricRegistry",
    "default_registry",
    "create_metric",
    "ScoreMap",
    "compute_scoremap",
    "MetricComparison",
    "rank_blocks",
    "compare_metrics",
    "spearman_rank_correlation",
]
