"""TRILIN: trilinear-interpolation error metric.

The metric measures the mean square error between the original block and the
block rebuilt by trilinear interpolation of its 8 corner values — i.e. exactly
the error the visualization pipeline will commit if this block is reduced.
Blocks that interpolate well (low score) lose little by being reduced, which
is why the paper's atmospheric scientists gravitated towards TRILIN (and VAR)
after seeing the scoremaps.
"""

from __future__ import annotations

import numpy as np

from repro.grid.reduction import reduction_error, reduction_error_batch
from repro.metrics.base import MetricCost, ScoreMetric


class TrilinearErrorMetric(ScoreMetric):
    """Score = MSE between the block and its corner-interpolated reconstruction."""

    name = "TRILIN"
    # Table I: 14.30 s on 64 cores -> ~5.0e-7 s per point.
    cost = MetricCost(per_point=4.98e-7)
    supports_batch = True

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return reduction_error(arr)

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = self._prepare_batch(batch)
        return reduction_error_batch(arr)
