"""Compressor-based scoring metrics (FPZIP / ZFP / LZ).

The intuition (Section IV-B-e): the compressed size of a block correlates with
its information content, and compressors need no tuning (no histogram range or
bin count).  The score is the *inverse compression ratio* — compressed size
divided by original size — so that hard-to-compress (information-rich) blocks
get high scores and smooth, compressible blocks get low scores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compress.base import Compressor
from repro.compress.fpzip_like import FpzipLikeCompressor
from repro.compress.lz_like import LzLikeCompressor
from repro.compress.zfp_like import ZfpLikeCompressor
from repro.metrics.base import MetricCost, ScoreMetric

#: Calibrated per-point costs (Blue Waters seconds) for each compressor-based
#: scorer; FPZIP from Table I, the others assumed on the same order.
_COMPRESSOR_COSTS = {
    "fpzip": MetricCost(per_point=3.08e-7),
    "zfp": MetricCost(per_point=2.6e-7),
    "lz": MetricCost(per_point=3.5e-7),
}


class CompressionRatioMetric(ScoreMetric):
    """Score = compressed size / original size (inverse compression ratio).

    Parameters
    ----------
    compressor:
        Any :class:`~repro.compress.base.Compressor`; defaults to the
        fpzip-like coder, which is the variant whose results the paper plots.
    subsample:
        Optional stride applied to the block before compression to bound the
        scoring cost of the pure-Python coders on large blocks (``None``
        disables subsampling).  The stride sampling is deterministic, so
        scores remain comparable across blocks of equal size.
    """

    #: ``score_batch`` delegates to the compressor's vectorised
    #: ``compressed_size_batch``, so stacking blocks is worthwhile.
    supports_batch = True

    def __init__(
        self,
        compressor: Optional[Compressor] = None,
        subsample: Optional[int] = None,
    ) -> None:
        self.compressor = compressor or FpzipLikeCompressor()
        if subsample is not None and subsample < 1:
            raise ValueError(f"subsample must be >= 1 or None, got {subsample}")
        self.subsample = subsample
        self.name = self.compressor.name.upper()
        self.cost = _COMPRESSOR_COSTS.get(
            self.compressor.name, MetricCost(per_point=3.0e-7)
        )

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        if self.subsample is not None and self.subsample > 1:
            s = self.subsample
            arr = np.ascontiguousarray(arr[::s, ::s, ::s])
        result = self.compressor.compress(arr)
        if result.original_nbytes == 0:
            return 0.0
        return float(result.compressed_nbytes / result.original_nbytes)

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        """Inverse compression ratios of a stacked batch in one coder pass.

        The compressor's ``compressed_size_batch`` computes every block's
        encoded size with the exact arithmetic of ``compress``, so the scores
        are bitwise identical to :meth:`score_block`; only the per-block
        Python and payload-assembly overhead disappears.
        """
        arr = self._prepare_batch(batch)
        if self.subsample is not None and self.subsample > 1:
            s = self.subsample
            arr = np.ascontiguousarray(arr[:, ::s, ::s, ::s])
        if arr.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        sizes = self.compressor.compressed_size_batch(arr)
        # The scalar path's denominator is the size of the block the
        # compressor actually encodes, i.e. after its dtype policy promotes
        # anything but float32/float64 (e.g. float16) to float64.  Blocks of
        # one stacked batch share shape and dtype, hence one per-block size.
        itemsize = arr.dtype.itemsize if arr.dtype in (np.float32, np.float64) else 8
        original_nbytes = int(arr[0].size) * itemsize
        if original_nbytes == 0:
            return np.zeros(arr.shape[0], dtype=np.float64)
        return sizes.astype(np.float64) / float(original_nbytes)

    # -- convenience constructors ------------------------------------------

    @classmethod
    def fpzip(cls, subsample: Optional[int] = None) -> "CompressionRatioMetric":
        """FPZIP-based scorer (the variant reported in the paper's figures)."""
        return cls(FpzipLikeCompressor(), subsample=subsample)

    @classmethod
    def zfp(cls, precision: int = 16, subsample: Optional[int] = None) -> "CompressionRatioMetric":
        """ZFP-based scorer (paper: "results similar to FPZIP")."""
        return cls(ZfpLikeCompressor(precision=precision), subsample=subsample)

    @classmethod
    def lz(cls, subsample: Optional[int] = None) -> "CompressionRatioMetric":
        """LZ/binary-mask-based scorer (paper: "results similar to FPZIP")."""
        return cls(LzLikeCompressor(), subsample=subsample)
