"""Scoremaps: visualising how a metric scores the blocks of a domain (Fig. 4).

A scoremap is a 2-D image of the horizontal domain where every pixel of a
block's footprint takes the block's score — the greyscale colormaps the paper
shows to scientists so they can pick a metric whose high-score regions match
what they care about (the vortex region, in their case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.grid.block import Block
from repro.grid.decomposition import CartesianDecomposition
from repro.metrics.base import ScoreMetric


@dataclass
class ScoreMap:
    """Per-block scores mapped onto the horizontal plane.

    Attributes
    ----------
    metric_name:
        Name of the metric that produced the scores.
    image:
        2-D array (nx, ny): each block footprint filled with its score.
    block_scores:
        Mapping block id -> score.
    """

    metric_name: str
    image: np.ndarray
    block_scores: Dict[int, float]

    def normalised(self) -> np.ndarray:
        """Image rescaled to [0, 1] (constant images map to zeros)."""
        img = np.asarray(self.image, dtype=np.float64)
        lo, hi = float(img.min()), float(img.max())
        if hi <= lo:
            return np.zeros_like(img)
        return (img - lo) / (hi - lo)

    def high_score_fraction(self, quantile: float = 0.9) -> float:
        """Fraction of the horizontal area whose score exceeds the given quantile."""
        if not (0.0 < quantile < 1.0):
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        img = self.normalised()
        threshold = float(np.quantile(img, quantile))
        return float(np.mean(img > threshold))


def compute_scoremap(
    metric: ScoreMetric,
    decomposition: CartesianDecomposition,
    field: np.ndarray,
    level: Optional[int] = None,
) -> ScoreMap:
    """Score every block of ``field`` and build the scoremap image.

    Parameters
    ----------
    metric:
        Scoring metric to apply.
    decomposition:
        Domain decomposition defining the blocks.
    field:
        Full-domain 3-D array.
    level:
        Unused placeholder for API symmetry with colormap rendering (the score
        of a block is computed from its full 3-D content, not a single level).

    Returns
    -------
    ScoreMap
    """
    field = np.asarray(field)
    if tuple(field.shape) != tuple(decomposition.global_shape):
        raise ValueError(
            f"field shape {field.shape} does not match decomposition "
            f"{decomposition.global_shape}"
        )
    nx, ny, _ = decomposition.global_shape
    image = np.zeros((nx, ny), dtype=np.float64)
    block_scores: Dict[int, float] = {}
    for rank in range(decomposition.nranks):
        for block in decomposition.extract_blocks(rank, field):
            score = metric.score_block(block.data)
            block_scores[block.block_id] = score
            sl = block.extent.slices
            image[sl[0], sl[1]] = score
    return ScoreMap(metric_name=metric.name, image=image, block_scores=block_scores)


def scoremaps_for_metrics(
    metrics: Sequence[ScoreMetric],
    decomposition: CartesianDecomposition,
    field: np.ndarray,
) -> List[ScoreMap]:
    """Compute one scoremap per metric (the full Figure 4 panel)."""
    return [compute_scoremap(m, decomposition, field) for m in metrics]
