"""Name-based metric registry.

The pipeline configuration refers to metrics by the paper's names ("VAR",
"LEA", ...); the registry maps those names to constructed metric objects and
lets users plug in their own domain-specific scorers, which is how the paper
expects domain scientists to extend the system.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.metrics.base import ScoreMetric
from repro.metrics.bytewise import BytewiseEntropyMetric
from repro.metrics.compression import CompressionRatioMetric
from repro.metrics.entropy import HistogramEntropyMetric, LocalEntropyMetric
from repro.metrics.interpolation import TrilinearErrorMetric
from repro.metrics.statistics import (
    PythonVarianceMetric,
    RangeMetric,
    StdDevMetric,
    VarianceMetric,
)

MetricFactory = Callable[[], ScoreMetric]


class MetricRegistry:
    """Registry of metric factories keyed by (case-insensitive) name."""

    def __init__(self) -> None:
        self._factories: Dict[str, MetricFactory] = {}

    def register(self, name: str, factory: MetricFactory, overwrite: bool = False) -> None:
        """Register ``factory`` under ``name``.

        Raises ``ValueError`` if the name is taken and ``overwrite`` is False.
        """
        key = name.strip().upper()
        if not key:
            raise ValueError("metric name must not be empty")
        if key in self._factories and not overwrite:
            raise ValueError(f"metric {key!r} is already registered")
        self._factories[key] = factory

    def create(self, name: str) -> ScoreMetric:
        """Instantiate the metric registered under ``name``."""
        key = name.strip().upper()
        factory = self._factories.get(key)
        if factory is None:
            raise KeyError(
                f"unknown metric {name!r}; available: {', '.join(self.names())}"
            )
        return factory()

    def names(self) -> List[str]:
        """Sorted list of registered metric names."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.strip().upper() in self._factories

    def create_many(self, names: Iterable[str]) -> List[ScoreMetric]:
        """Instantiate several metrics at once."""
        return [self.create(n) for n in names]


def _build_default_registry() -> MetricRegistry:
    registry = MetricRegistry()
    registry.register("RANGE", RangeMetric)
    registry.register("VAR", VarianceMetric)
    registry.register("STD", StdDevMetric)
    registry.register("ITL", HistogramEntropyMetric)
    registry.register("LOCAL_ENTROPY", LocalEntropyMetric)
    registry.register("LEA", BytewiseEntropyMetric)
    registry.register("TRILIN", TrilinearErrorMetric)
    registry.register("FPZIP", CompressionRatioMetric.fpzip)
    registry.register("ZFP", CompressionRatioMetric.zfp)
    registry.register("LZ", CompressionRatioMetric.lz)
    # The deliberately GIL-bound pure-Python scorer: registered so request
    # payloads (serve mode, CLI) can select the shape of a user-supplied
    # scalar metric — it is what the process execution tier exists to speed
    # up, and what its throughput gate drives.
    registry.register("PYVAR", PythonVarianceMetric)
    return registry


_DEFAULT = _build_default_registry()

#: The six representative metrics plotted in the paper's figures.
PAPER_METRICS = ("LEA", "FPZIP", "ITL", "RANGE", "VAR", "TRILIN")


def default_registry() -> MetricRegistry:
    """The registry pre-populated with the paper's metrics."""
    return _DEFAULT


def create_metric(name: str) -> ScoreMetric:
    """Shorthand for ``default_registry().create(name)``."""
    return _DEFAULT.create(name)
