"""Statistical metrics: RANGE and VAR.

* ``RANGE`` scores a block by ``max - min``: blocks spanning a wide range of
  values are assumed interesting.  Its known blind spot (noted in the paper)
  is a block with high variation inside a small range.
* ``VAR`` scores a block by the variance of its values, which fixes that
  blind spot and is the cheapest metric of the whole family (Table I).
* ``PythonVarianceMetric`` is a deliberately pure-Python scalar scorer — the
  stand-in for the user-supplied metrics the paper expects domain scientists
  to plug in, used by the engine benchmarks to measure GIL-bound scoring.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import MetricCost, ScoreMetric


class RangeMetric(ScoreMetric):
    """Score = max(block) - min(block)."""

    name = "RANGE"
    # Calibrated from Table I: 7.03 s for 64 cores' share of 16,000 55x55x38 blocks.
    cost = MetricCost(per_point=2.45e-7)
    supports_batch = True

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return float(arr.max() - arr.min())

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = self._prepare_batch(batch)
        flat = arr.reshape(arr.shape[0], -1)
        return (flat.max(axis=1) - flat.min(axis=1)).astype(np.float64)


class VarianceMetric(ScoreMetric):
    """Score = variance of the block values."""

    name = "VAR"
    # Table I: 1.41 s on 64 cores -> ~4.9e-8 s per point.
    cost = MetricCost(per_point=4.9e-8)
    supports_batch = True

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return float(np.var(arr))

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = self._prepare_batch(batch)
        flat = arr.reshape(arr.shape[0], -1)
        return np.var(flat, axis=1).astype(np.float64)


class PythonVarianceMetric(ScoreMetric):
    """Pure-Python scalar variance (the GIL-bound reference scorer).

    Scores a block with Welford's online variance over a Python loop,
    holding the GIL for the whole call — exactly what a user-supplied
    scalar metric written without NumPy looks like.  The thread backend
    cannot speed such a metric up at all (the loop never releases the GIL);
    the process backend can, which is what the engine benchmarks measure.
    ``stride`` subsamples the block to keep the absolute cost at benchmark
    scale; scoring stays deterministic, so all backends agree bitwise.

    Registered as ``"PYVAR"`` so serve/CLI request payloads can select it —
    not as a scoring recommendation, but as the reference workload for the
    process execution paths (a thread pool cannot speed it up at all).
    """

    name = "PYVAR"
    cost = MetricCost(per_point=4.9e-8)
    supports_batch = False

    def __init__(self, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = int(stride)

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        count = 0
        mean = 0.0
        m2 = 0.0
        for value in arr.ravel()[:: self.stride].tolist():
            count += 1
            delta = value - mean
            mean += delta / count
            m2 += delta * (value - mean)
        return m2 / count if count else 0.0


class StdDevMetric(ScoreMetric):
    """Score = standard deviation (a variant of VAR on the same cost curve)."""

    name = "STD"
    cost = MetricCost(per_point=4.9e-8)
    supports_batch = True

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return float(np.std(arr))

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = self._prepare_batch(batch)
        flat = arr.reshape(arr.shape[0], -1)
        return np.std(flat, axis=1).astype(np.float64)
