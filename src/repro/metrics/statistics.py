"""Statistical metrics: RANGE and VAR.

* ``RANGE`` scores a block by ``max - min``: blocks spanning a wide range of
  values are assumed interesting.  Its known blind spot (noted in the paper)
  is a block with high variation inside a small range.
* ``VAR`` scores a block by the variance of its values, which fixes that
  blind spot and is the cheapest metric of the whole family (Table I).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import MetricCost, ScoreMetric


class RangeMetric(ScoreMetric):
    """Score = max(block) - min(block)."""

    name = "RANGE"
    # Calibrated from Table I: 7.03 s for 64 cores' share of 16,000 55x55x38 blocks.
    cost = MetricCost(per_point=2.45e-7)
    supports_batch = True

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return float(arr.max() - arr.min())

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = self._prepare_batch(batch)
        flat = arr.reshape(arr.shape[0], -1)
        return (flat.max(axis=1) - flat.min(axis=1)).astype(np.float64)


class VarianceMetric(ScoreMetric):
    """Score = variance of the block values."""

    name = "VAR"
    # Table I: 1.41 s on 64 cores -> ~4.9e-8 s per point.
    cost = MetricCost(per_point=4.9e-8)
    supports_batch = True

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return float(np.var(arr))

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = self._prepare_batch(batch)
        flat = arr.reshape(arr.shape[0], -1)
        return np.var(flat, axis=1).astype(np.float64)


class StdDevMetric(ScoreMetric):
    """Score = standard deviation (a variant of VAR on the same cost curve)."""

    name = "STD"
    cost = MetricCost(per_point=4.9e-8)
    supports_batch = True

    def score_block(self, data: np.ndarray) -> float:
        arr = self._prepare(data)
        return float(np.std(arr))

    def score_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = self._prepare_batch(batch)
        flat = arr.reshape(arr.shape[0], -1)
        return np.std(flat, axis=1).astype(np.float64)
