"""Service mode: the pipeline as a long-running local endpoint.

``python -m repro serve`` turns the one-shot CLI into a small asyncio HTTP
service.  Clients POST scenario-run requests to ``/run``; the server
multiplexes runs over a shared worker pool — a thread pool by default, or
GIL-free worker processes with zero-copy mmap data handoff under
``--execution process`` — streams one JSON line per completed iteration
(NDJSON), enforces per-request deadlines (``timeout_s`` and the server's
``--max-run-seconds`` cap), and caches each resolved scenario's snapshots on
disk as a raw-layout :class:`~repro.io.store.DatasetStore` keyed by the full
:class:`~repro.scenarios.ScenarioConfig` — so a repeated request
memory-maps the stored snapshots instead of re-simulating CM1.  The cache is
LRU-bounded via ``--cache-max-entries`` / ``--cache-max-bytes``.

:mod:`repro.serve.cache` holds the replay cache, :mod:`repro.serve.server`
the protocol and request handling, :mod:`repro.serve.procrun` the
worker-process side of the process execution tier.
"""

from repro.serve.cache import ReplayCache, scenario_cache_key
from repro.serve.procrun import RunCancelled
from repro.serve.server import EXECUTION_TIERS, RunRequest, ServeApp, serve_forever

__all__ = [
    "EXECUTION_TIERS",
    "ReplayCache",
    "RunCancelled",
    "RunRequest",
    "ServeApp",
    "scenario_cache_key",
    "serve_forever",
]
