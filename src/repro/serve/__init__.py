"""Service mode: the pipeline as a long-running local endpoint.

``python -m repro serve`` turns the one-shot CLI into a small asyncio HTTP
service.  Clients POST scenario-run requests to ``/run``; the server
multiplexes runs over a shared worker pool, streams one JSON line per
completed iteration (NDJSON), and caches each resolved scenario's snapshots
on disk as a raw-layout :class:`~repro.io.store.DatasetStore` keyed by the
full :class:`~repro.scenarios.ScenarioConfig` — so a repeated request
memory-maps the stored snapshots instead of re-simulating CM1.

:mod:`repro.serve.cache` holds the replay cache, :mod:`repro.serve.server`
the protocol and request handling.
"""

from repro.serve.cache import ReplayCache, scenario_cache_key
from repro.serve.server import RunRequest, ServeApp, serve_forever

__all__ = [
    "ReplayCache",
    "RunRequest",
    "ServeApp",
    "scenario_cache_key",
    "serve_forever",
]
