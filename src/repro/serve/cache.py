"""Replay cache: resolved scenario configs to mmap-backed dataset stores.

The PR 5 cache-key fix made a fully resolved
:class:`~repro.scenarios.ScenarioConfig` the sound identity of a workload —
two configs that hash equal describe the same data.  This module turns that
identity into an *on-disk* cache: the first run of a config simulates CM1
and persists every snapshot as a raw-layout
:class:`~repro.io.store.DatasetStore`; every later run (within or across
server processes) replays the stored snapshots through read-only
``np.memmap`` views and never touches the simulation again.

Long-lived servers need the cache *bounded*: ``max_entries`` / ``max_bytes``
cap it with LRU eviction.  Eviction is decided under the cache's internal
lock, honours in-flight readers (an entry a run is currently replaying is
never evicted — pin one with :meth:`ReplayCache.acquire` /
:meth:`ReplayCache.acquire_store`), and is counted alongside hits and misses
in :meth:`ReplayCache.stats`, which ``GET /health`` surfaces.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.cm1.config import CM1Config
from repro.cm1.dataset import CM1Dataset
from repro.experiments.common import ExperimentScenario
from repro.io.store import DatasetStore
from repro.scenarios import ScenarioConfig

__all__ = ["ReplayCache", "scenario_cache_key"]


def scenario_cache_key(config: ScenarioConfig) -> str:
    """Stable cache key of a fully resolved scenario config.

    ``ScenarioConfig`` (and any storm override it carries) is a frozen
    dataclass, so its ``repr`` is a complete, deterministic rendering of
    every field — hashing it gives a filesystem-safe key with the same
    equality semantics as the config itself.
    """
    digest = hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:20]
    prefix = config.name or "adhoc"
    return f"{prefix}-{digest}"


def _dataset_for(config: ScenarioConfig) -> CM1Dataset:
    """A live CM1 dataset for ``config`` (the cache-miss data source).

    ``cache=False``: the snapshots are about to be persisted and then
    replayed from disk, so keeping a second in-memory copy for the life of
    the save loop would only double peak memory.
    """
    if config.storm is not None:
        cm1 = CM1Config(shape=config.shape, seed=config.seed, storm=config.storm)
    else:
        cm1 = CM1Config(shape=config.shape, seed=config.seed)
    return CM1Dataset(cm1, nsnapshots=config.nsnapshots, cache=False)


class _Entry:
    """Book-keeping for one cached store (guarded by the cache lock)."""

    __slots__ = ("nbytes", "readers")

    def __init__(self, nbytes: int) -> None:
        self.nbytes = int(nbytes)
        self.readers = 0


class ReplayCache:
    """Disk-backed scenario cache keyed by resolved config identity.

    Parameters
    ----------
    root:
        Directory the per-config dataset stores live under (one
        subdirectory per cache key).  Stores already present under it —
        from a previous server process — are adopted on construction in
        mtime order (oldest = least recently used).
    max_entries, max_bytes:
        Optional bounds on the number of cached stores / their total
        on-disk bytes.  When either is exceeded, least-recently-used
        entries without in-flight readers are evicted (their directories
        deleted) until the cache fits; pinned entries are skipped, so the
        cache may transiently exceed its bounds while every entry is being
        read.

    Thread safety: all entry points may be called concurrently from worker
    threads; a per-key lock ensures that two simultaneous requests for the
    same config simulate at most once (the second waits, then replays).
    ``hits`` / ``misses`` / ``evictions`` count resolved requests and
    evicted stores and are surfaced in the serve responses.
    """

    def __init__(
        self,
        root: Path,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._guard = threading.Lock()
        self._key_locks: Dict[str, threading.Lock] = {}
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._adopt_existing()

    # -- internal ------------------------------------------------------------

    def _adopt_existing(self) -> None:
        """Register stores left by a previous process, oldest first."""
        if not self.root.exists():
            return
        found = []
        for child in self.root.iterdir():
            store = DatasetStore(child)
            if child.is_dir() and store.exists():
                found.append((child.stat().st_mtime, child.name, store.nbytes()))
        with self._guard:
            for _, key, nbytes in sorted(found):
                self._entries[key] = _Entry(nbytes)
            self._evict_locked()

    def _lock_for(self, key: str) -> threading.Lock:
        with self._guard:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    def _over_bounds_locked(self) -> bool:
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_bytes is not None:
            total = sum(entry.nbytes for entry in self._entries.values())
            if total > self.max_bytes:
                return True
        return False

    def _evict_locked(self) -> None:
        """Evict LRU entries (readers == 0) until the cache fits its bounds.

        Runs with ``self._guard`` held — the same lock under which readers
        are pinned, so an entry observed at zero readers cannot gain one
        mid-eviction.
        """
        while self._over_bounds_locked():
            victim = next(
                (k for k, e in self._entries.items() if e.readers == 0), None
            )
            if victim is None:
                return  # every entry is being read; try again on release
            del self._entries[victim]
            self.evictions += 1
            DatasetStore(self.root / victim).delete()

    def _release(self, key: str) -> None:
        with self._guard:
            entry = self._entries.get(key)
            if entry is not None and entry.readers > 0:
                entry.readers -= 1
            # A release may make an over-bounds cache evictable again.
            self._evict_locked()

    # -- public surface ------------------------------------------------------

    def store_path(self, config: ScenarioConfig) -> Path:
        """Directory the dataset store for ``config`` lives in (or will)."""
        return self.root / scenario_cache_key(config)

    def peek(self, config: ScenarioConfig) -> bool:
        """True if a replay for ``config`` is already cached on disk."""
        return DatasetStore(self.store_path(config)).exists()

    @contextmanager
    def acquire_store(
        self, config: ScenarioConfig
    ) -> Iterator[Tuple[Path, bool]]:
        """Pin the store for ``config``; yields ``(store_dir, was_hit)``.

        The store is simulated and persisted on a miss (under the per-key
        lock, so N simultaneous identical requests simulate exactly once and
        exactly one of them reports the miss).  While the context is open
        the entry counts as *read* and is exempt from LRU eviction — this is
        the handle the serve tier holds for the whole duration of a run,
        including process-tier runs whose worker re-opens the store by path.
        """
        key = scenario_cache_key(config)
        store_dir = self.root / key
        with self._lock_for(key):
            with self._guard:
                entry = self._entries.get(key)
                if entry is None and DatasetStore(store_dir).exists():
                    # Left by another process (or pre-seeded): adopt it.
                    entry = self._entries[key] = _Entry(
                        DatasetStore(store_dir).nbytes()
                    )
                was_hit = entry is not None
                if was_hit:
                    self.hits += 1
                    entry.readers += 1
                    self._entries.move_to_end(key)
            if not was_hit:
                # Simulate + persist outside the cache-wide guard (slow),
                # still under the per-key lock (exactly-once).
                _dataset_for(config).save(
                    store_dir,
                    extra_metadata={
                        "scenario": config.name or "adhoc",
                        "cache_key": key,
                    },
                    layout="raw",
                )
                with self._guard:
                    entry = self._entries[key] = _Entry(
                        DatasetStore(store_dir).nbytes()
                    )
                    entry.readers += 1
                    self.misses += 1
                    self._evict_locked()
        try:
            yield store_dir, was_hit
        finally:
            self._release(key)

    @contextmanager
    def acquire(
        self, config: ScenarioConfig
    ) -> Iterator[Tuple[ExperimentScenario, bool]]:
        """Pin + open: yields ``(scenario, was_hit)`` backed by the store.

        Hit or miss, the scenario replays the persisted snapshots through a
        :class:`~repro.cm1.dataset.StoredCM1Dataset` opened with
        ``mmap=True`` — fields come straight off the raw-layout store,
        zero-copy, bitwise-identical to the live simulation (the raw layout
        stores exact bytes).
        """
        with self.acquire_store(config) as (store_dir, was_hit):
            dataset = CM1Dataset.load(
                store_dir, field_name=config.field_name, mmap=True
            )
            yield ExperimentScenario(config, dataset=dataset), was_hit

    def scenario_for(self, config: ScenarioConfig) -> "Tuple[ExperimentScenario, bool]":
        """Resolve a config to ``(scenario, was_hit)``, cached.

        Unpinned convenience over :meth:`acquire` — the entry is eviction
        fair game as soon as this returns, so callers that stream a long
        replay under a bounded cache should hold :meth:`acquire` open
        instead.  (Safe either way on POSIX: the mmap keeps the deleted
        file's inode alive; eviction only unlinks names.)
        """
        with self.acquire(config) as (scenario, was_hit):
            return scenario, was_hit

    def stats(self) -> Dict[str, Optional[int]]:
        """Hit/miss/eviction counters and occupancy (snapshot, not a view)."""
        with self._guard:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": sum(entry.nbytes for entry in self._entries.values()),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            }
