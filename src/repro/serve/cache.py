"""Replay cache: resolved scenario configs to mmap-backed dataset stores.

The PR 5 cache-key fix made a fully resolved
:class:`~repro.scenarios.ScenarioConfig` the sound identity of a workload —
two configs that hash equal describe the same data.  This module turns that
identity into an *on-disk* cache: the first run of a config simulates CM1
and persists every snapshot as a raw-layout
:class:`~repro.io.store.DatasetStore`; every later run (within or across
server processes) replays the stored snapshots through read-only
``np.memmap`` views and never touches the simulation again.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Dict, Tuple

from repro.cm1.dataset import CM1Dataset
from repro.experiments.common import ExperimentScenario
from repro.io.store import DatasetStore
from repro.scenarios import ScenarioConfig

__all__ = ["ReplayCache", "scenario_cache_key"]


def scenario_cache_key(config: ScenarioConfig) -> str:
    """Stable cache key of a fully resolved scenario config.

    ``ScenarioConfig`` (and any storm override it carries) is a frozen
    dataclass, so its ``repr`` is a complete, deterministic rendering of
    every field — hashing it gives a filesystem-safe key with the same
    equality semantics as the config itself.
    """
    digest = hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:20]
    prefix = config.name or "adhoc"
    return f"{prefix}-{digest}"


class ReplayCache:
    """Disk-backed scenario cache keyed by resolved config identity.

    Parameters
    ----------
    root:
        Directory the per-config dataset stores live under (one
        subdirectory per cache key).

    Thread safety: ``scenario_for`` may be called concurrently from worker
    threads; a per-key lock ensures that two simultaneous requests for the
    same config simulate at most once (the second waits, then replays).
    ``hits`` / ``misses`` count resolved requests and are surfaced in the
    serve responses.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self._guard = threading.Lock()
        self._key_locks: Dict[str, threading.Lock] = {}

    def _lock_for(self, key: str) -> threading.Lock:
        with self._guard:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    def store_path(self, config: ScenarioConfig) -> Path:
        """Directory the dataset store for ``config`` lives in (or will)."""
        return self.root / scenario_cache_key(config)

    def peek(self, config: ScenarioConfig) -> bool:
        """True if a replay for ``config`` is already cached on disk."""
        return DatasetStore(self.store_path(config)).exists()

    def scenario_for(self, config: ScenarioConfig) -> "Tuple[ExperimentScenario, bool]":
        """Resolve a config to ``(scenario, was_hit)``, cached.

        On a cache hit the scenario is backed by a
        :class:`~repro.cm1.dataset.StoredCM1Dataset` opened with
        ``mmap=True`` — snapshot fields come straight off the raw-layout
        store, zero-copy, and the CM1 simulation is never constructed.  On
        a miss the scenario simulates live (and keeps its in-memory snapshot
        cache for the current run), then persists every snapshot so the next
        identical request hits.  The verdict is decided under the per-key
        lock, so of N simultaneous identical requests exactly one reports a
        miss — the one that simulated.
        """
        key = scenario_cache_key(config)
        with self._lock_for(key):
            store_dir = self.root / key
            if DatasetStore(store_dir).exists():
                with self._guard:
                    self.hits += 1
                dataset = CM1Dataset.load(
                    store_dir, field_name=config.field_name, mmap=True
                )
                return ExperimentScenario(config, dataset=dataset), True
            with self._guard:
                self.misses += 1
            scenario = ExperimentScenario(config)
            scenario.dataset.save(
                store_dir,
                extra_metadata={"scenario": config.name or "adhoc", "cache_key": key},
                layout="raw",
            )
            return scenario, False

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters (snapshot, not a live view)."""
        with self._guard:
            return {"hits": self.hits, "misses": self.misses}
