"""The asyncio scenario-run service behind ``python -m repro serve``.

A deliberately small stdlib-only HTTP/1.1 server (``asyncio.start_server``
plus hand-rolled request parsing — no web framework in the image), because
the protocol is tiny:

``GET /health``
    ``{"status": "ok", "execution": ..., "cache": {...}, "executor": {...}}``
    — liveness plus cache counters (hits/misses/evictions/occupancy) and
    executor depth (active runs, queued runs, worker count, execution tier).

``GET /scenarios``
    The registered workload names.

``POST /run``
    JSON body selecting a registered scenario and optional overrides
    (``ranks``, ``snapshots``, ``seed``, ``metric``, ``redistribution``,
    ``percent``, ``target``, ``render_mode``, ``backend``, ``pipelined``,
    ``timeout_s``).  The response streams NDJSON: one ``start`` event (with
    the cache verdict), one ``iteration`` event per completed pipeline
    iteration *as it completes*, and a final ``summary`` event matching
    ``python -m repro run``'s machine-readable contract — or a terminal
    ``error`` event whose ``reason`` distinguishes a ``"timeout"`` (the
    request's ``timeout_s`` or the server's ``--max-run-seconds`` cap
    expired), a ``"shutdown"`` (the server is draining), and an
    ``"exception"``.

Two execution tiers (``ServeApp(execution=...)``, CLI ``--execution``):

``"thread"`` (default)
    Runs execute on a shared :class:`~concurrent.futures.ThreadPoolExecutor`
    — many concurrent requests multiplex over a bounded pool while the
    event loop keeps streaming.  NumPy-heavy runs overlap well; runs
    dominated by *GIL-bound* Python (scalar user metrics like ``PYVAR``)
    serialise on one core.

``"process"``
    Each run executes in a worker process from the shared
    :func:`~repro.utils.procpool.shared_process_pool`, GIL-free.  Snapshot
    data is never pickled to workers: the worker re-opens the replay
    cache's raw-layout store by path through read-only memory maps (see
    :mod:`repro.serve.procrun`), and iteration events stream back over a
    manager queue, so NDJSON latency-to-first-event stays flat.

Scenario data resolves through the :class:`~repro.serve.cache.ReplayCache`:
the first request for a config simulates CM1 and persists the snapshots,
every identical request after it replays them via read-only memory maps.
The cache entry stays pinned (eviction-exempt) for the duration of each run.
"""

from __future__ import annotations

import asyncio
import json
import queue as queue_module
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.backends import engine_backends
from repro.core.config import AdaptationConfig
from repro.grid.shm import purge_owned_segments
from repro.metrics.registry import default_registry
from repro.scenarios import get_scenario, scenario_names
from repro.serve.cache import ReplayCache, scenario_cache_key
from repro.serve.procrun import RunCancelled, iteration_row, run_scenario_in_worker
from repro.utils.procpool import (
    default_process_workers,
    shared_manager,
    shared_process_pool,
    warm_shared_pool,
)

__all__ = ["EXECUTION_TIERS", "RunRequest", "ServeApp", "serve_forever"]

_SENTINEL = object()

#: Valid values of ``ServeApp(execution=...)`` / ``serve --execution``.
EXECUTION_TIERS = ("thread", "process")

#: Seconds past a request deadline before the *streaming* side force-closes
#: the response.  The cooperative cancel normally fires first (between
#: iterations); this watchdog only catches a run stuck inside one iteration.
STREAM_GRACE_SECONDS = 2.0

#: Poll interval of the process-tier event drain and the shutdown drain.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class RunRequest:
    """One validated ``POST /run`` payload."""

    scenario: str
    ranks: Optional[int] = None
    snapshots: Optional[int] = None
    seed: Optional[int] = None
    metric: str = "VAR"
    redistribution: str = "none"
    percent: Optional[float] = None
    target: Optional[float] = None
    render_mode: str = "count"
    backend: Optional[str] = None
    pipelined: bool = True
    timeout_s: Optional[float] = None

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RunRequest":
        """Build a request from a decoded JSON body; raises ``ValueError``."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        scenario = payload.get("scenario")
        if not isinstance(scenario, str) or not scenario.strip():
            raise ValueError("'scenario' (a registered name) is required")
        known = {
            "scenario", "ranks", "snapshots", "seed", "metric",
            "redistribution", "percent", "target", "render_mode", "backend",
            "pipelined", "timeout_s",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        request = cls(
            scenario=scenario.strip(),
            ranks=None if payload.get("ranks") is None else int(payload["ranks"]),
            snapshots=(
                None if payload.get("snapshots") is None else int(payload["snapshots"])
            ),
            seed=None if payload.get("seed") is None else int(payload["seed"]),
            metric=str(payload.get("metric", "VAR")),
            redistribution=str(payload.get("redistribution", "none")),
            percent=(
                None if payload.get("percent") is None else float(payload["percent"])
            ),
            target=None if payload.get("target") is None else float(payload["target"]),
            render_mode=str(payload.get("render_mode", "count")),
            backend=(
                None
                if payload.get("backend") is None
                else str(payload["backend"]).strip().lower()
            ),
            pipelined=bool(payload.get("pipelined", True)),
            timeout_s=(
                None
                if payload.get("timeout_s") is None
                else float(payload["timeout_s"])
            ),
        )
        if request.metric.strip().upper() not in default_registry():
            raise ValueError(
                f"unknown metric {request.metric!r}; available: "
                f"{', '.join(default_registry().names())}"
            )
        if request.redistribution not in ("none", "shuffle", "round_robin"):
            raise ValueError(
                f"redistribution must be 'none', 'shuffle' or 'round_robin', "
                f"got {request.redistribution!r}"
            )
        if request.render_mode not in ("count", "mesh"):
            raise ValueError(
                f"render_mode must be 'count' or 'mesh', got {request.render_mode!r}"
            )
        if request.backend is not None and request.backend not in engine_backends():
            raise ValueError(
                f"unknown backend {request.backend!r}; available: "
                f"{', '.join(engine_backends())}"
            )
        if request.timeout_s is not None and not request.timeout_s > 0:
            raise ValueError(f"timeout_s must be > 0, got {request.timeout_s}")
        return request


def _json_default(value):
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


class _RunScope:
    """Cancellation scope of one run: deadline + cancel flag + shutdown.

    Shared between the streaming coroutine (which enforces the hard stream
    deadline), the runner thread (which checks cooperatively between
    iterations via :meth:`check`), and — in the process tier — a manager
    Event proxy mirrored into the worker process.
    """

    def __init__(
        self, timeout_s: Optional[float], shutdown: threading.Event
    ) -> None:
        self.timeout_s = timeout_s
        self.started = time.monotonic()
        self.deadline = None if timeout_s is None else self.started + timeout_s
        self._shutdown = shutdown
        self._cancel = threading.Event()
        self._reason: Optional[str] = None
        self._remote_cancel = None  # manager Event proxy (process tier)

    def attach_remote_cancel(self, remote) -> None:
        self._remote_cancel = remote
        if self.cancelled() is not None:
            remote.set()

    def request_cancel(self, reason: str) -> None:
        if self._reason is None:
            self._reason = reason
        self._cancel.set()
        if self._remote_cancel is not None:
            self._remote_cancel.set()

    def cancelled(self) -> Optional[str]:
        """The cancel reason if this run should stop, else ``None``."""
        if self._cancel.is_set():
            return self._reason or "timeout"
        if self._shutdown.is_set():
            return "shutdown"
        if self.deadline is not None and time.monotonic() > self.deadline:
            return "timeout"
        return None

    def check(self) -> None:
        """Raise :class:`RunCancelled` when the run should stop."""
        reason = self.cancelled()
        if reason is not None:
            self.request_cancel(reason)
            raise RunCancelled(reason)

    def stream_expired(self) -> bool:
        """Whether the streaming side should give up on the runner."""
        return (
            self.deadline is not None
            and time.monotonic() > self.deadline + STREAM_GRACE_SECONDS
        )


class ServeApp:
    """The service: cache + worker pools + request handling.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk replay cache.
    max_workers:
        Number of scenario runs that can execute concurrently (further
        requests queue).  In the process tier this bounds the server-side
        streaming threads; worker processes are bounded by the shared
        process pool (:func:`default_process_workers`).
    execution:
        ``"thread"`` (default) or ``"process"`` — see the module docstring.
    max_run_seconds:
        Server-side cap on each run's duration.  A request's ``timeout_s``
        can only tighten it; the effective deadline is the minimum of both.
    cache_max_entries, cache_max_bytes:
        LRU bounds forwarded to :class:`~repro.serve.cache.ReplayCache`.
    shutdown_grace:
        Seconds :meth:`close` waits for cancelled in-flight runs to drain
        before abandoning them.
    """

    def __init__(
        self,
        cache_dir: Path,
        max_workers: int = 8,
        execution: str = "thread",
        max_run_seconds: Optional[float] = None,
        cache_max_entries: Optional[int] = None,
        cache_max_bytes: Optional[int] = None,
        shutdown_grace: float = 10.0,
    ) -> None:
        if execution not in EXECUTION_TIERS:
            raise ValueError(
                f"execution must be one of {EXECUTION_TIERS}, got {execution!r}"
            )
        if max_run_seconds is not None and not max_run_seconds > 0:
            raise ValueError(
                f"max_run_seconds must be > 0, got {max_run_seconds}"
            )
        self.execution = execution
        self.max_run_seconds = max_run_seconds
        self.shutdown_grace = float(shutdown_grace)
        self.cache = ReplayCache(
            Path(cache_dir),
            max_entries=cache_max_entries,
            max_bytes=cache_max_bytes,
        )
        self.max_workers = int(max_workers)
        self.executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-serve"
        )
        self._shutdown = threading.Event()
        self._runs_lock = threading.Lock()
        self._submitted = 0
        self._active = 0
        self._completed = 0
        if execution == "process":
            # Fork the worker processes (and the manager daemon) during
            # single-threaded startup, not from the first request thread.
            shared_manager()
            warm_shared_pool()

    # -- run accounting ------------------------------------------------------

    def _run_submitted(self) -> None:
        with self._runs_lock:
            self._submitted += 1

    def _run_started(self) -> None:
        with self._runs_lock:
            self._active += 1

    def _run_finished(self) -> None:
        with self._runs_lock:
            self._active -= 1
            self._completed += 1

    def executor_stats(self) -> Dict[str, object]:
        """Executor depth for ``GET /health``."""
        with self._runs_lock:
            active = self._active
            queued = max(0, self._submitted - self._completed - active)
            completed = self._completed
        workers = (
            default_process_workers()
            if self.execution == "process"
            else self.max_workers
        )
        return {
            "execution": self.execution,
            "workers": workers,
            "active": active,
            "queued": queued,
            "completed": completed,
        }

    def _timeout_for(self, request: RunRequest) -> Optional[float]:
        """Effective run timeout: request ``timeout_s`` ∧ server cap."""
        bounds = [
            t for t in (request.timeout_s, self.max_run_seconds) if t is not None
        ]
        return min(bounds) if bounds else None

    # -- run execution -------------------------------------------------------

    def _execute_run(
        self, request: RunRequest, config, emit, scope: _RunScope
    ) -> Dict[str, object]:
        """Blocking scenario run (worker-pool side), either tier.

        ``emit(event_dict)`` is called for the start event and every
        completed iteration; the returned dict is the final summary event.
        Raises :class:`RunCancelled` when the scope's deadline expires or a
        cancellation (shutdown, disconnect) is requested — always between
        iterations, so partial NDJSON output stays well-formed.
        """
        if self.execution == "process":
            return self._execute_process_run(request, config, emit, scope)
        with self.cache.acquire(config) as (scenario, was_hit):
            emit(self._start_event(request, config, was_hit))
            scope.check()
            adaptation: Optional[AdaptationConfig] = None
            if request.target is not None:
                adaptation = AdaptationConfig(
                    enabled=True, target_seconds=request.target
                )
            pipeline = scenario.build_pipeline(
                metric=request.metric,
                redistribution=request.redistribution,
                adaptation=adaptation,
                render_mode=request.render_mode,
                engine=request.backend,
                pipelined=request.pipelined,
            )

            def on_iteration(result) -> None:
                scope.check()
                emit({"type": "iteration", **iteration_row(result)})

            run = pipeline.run(
                scenario.iteration_blocks(),
                percent_override=request.percent,
                on_iteration=on_iteration,
            )
            scope.check()
            return {
                "type": "summary",
                "scenario": {
                    "name": config.name or request.scenario,
                    "ncores": config.ncores,
                    "shape": list(config.shape),
                    "nsnapshots": config.nsnapshots,
                    "seed": config.seed,
                },
                "config": pipeline.config_summary(),
                "run": run.summary(),
                "cache": self.cache.stats(),
            }

    def _execute_process_run(
        self, request: RunRequest, config, emit, scope: _RunScope
    ) -> Dict[str, object]:
        """Dispatch one run to a worker process and relay its event stream.

        The cache entry stays pinned (``acquire_store``) while the worker
        re-opens the store by path; iteration events arrive over a manager
        queue and are forwarded as they land.  Cancellation mirrors the
        scope into the worker through a manager Event — the worker aborts
        between iterations and its ``finally`` purges any shm segments.
        """
        with self.cache.acquire_store(config) as (store_dir, was_hit):
            emit(self._start_event(request, config, was_hit))
            scope.check()
            manager = shared_manager()
            events = manager.Queue()
            remote_cancel = manager.Event()
            scope.attach_remote_cancel(remote_cancel)
            deadline_wall = (
                None
                if scope.deadline is None
                else time.time() + max(0.0, scope.deadline - time.monotonic())
            )
            future = shared_process_pool().submit(
                run_scenario_in_worker,
                asdict(request),
                config,
                str(store_dir),
                events,
                remote_cancel,
                deadline_wall,
            )
            try:
                while True:
                    reason = scope.cancelled()
                    if reason is not None:
                        scope.request_cancel(reason)  # mirrors to the worker
                        future.cancel()  # no-op once running; frees a queued task
                        raise RunCancelled(reason)
                    try:
                        event = events.get(timeout=_POLL_SECONDS)
                    except queue_module.Empty:
                        if future.done():
                            while True:  # worker returned: drain stragglers
                                try:
                                    event = events.get_nowait()
                                except queue_module.Empty:
                                    break
                                emit(event)
                            break
                        continue
                    emit(event)
                summary = future.result()
                summary["cache"] = self.cache.stats()
                return summary
            finally:
                # A cancelled parent never leaks segments of its own, and a
                # cancelled worker purges its side (procrun's finally).
                if scope.cancelled() is not None:
                    purge_owned_segments()

    def _start_event(
        self, request: RunRequest, config, was_hit: bool
    ) -> Dict[str, object]:
        return {
            "type": "start",
            "scenario": config.name or request.scenario,
            "cache": "hit" if was_hit else "miss",
            "cache_key": scenario_cache_key(config),
            "iterations": config.nsnapshots,
            "execution": self.execution,
        }

    async def stream_run(self, request: RunRequest, write_line) -> None:
        """Run a request on the pool, awaiting ``write_line`` per event."""
        loop = asyncio.get_running_loop()
        out_queue: asyncio.Queue = asyncio.Queue()
        spec = get_scenario(request.scenario)  # KeyError -> handled by caller
        config = spec.build(
            ncores=request.ranks,
            nsnapshots=request.snapshots,
            seed=request.seed,
        )
        scope = _RunScope(self._timeout_for(request), self._shutdown)

        def emit(event: Dict[str, object]) -> None:
            loop.call_soon_threadsafe(out_queue.put_nowait, event)

        def runner() -> None:
            self._run_started()
            try:
                summary = self._execute_run(request, config, emit, scope)
                emit(summary)
            except RunCancelled as exc:
                emit(
                    {
                        "type": "error",
                        "reason": exc.reason,
                        "error": self._cancel_message(exc.reason, scope),
                    }
                )
            except Exception as exc:  # surfaced as an error event
                emit({"type": "error", "reason": "exception", "error": str(exc)})
            finally:
                self._run_finished()
                loop.call_soon_threadsafe(out_queue.put_nowait, _SENTINEL)

        self._run_submitted()
        future = loop.run_in_executor(self.executor, runner)
        finished = False
        try:
            while True:
                try:
                    event = await asyncio.wait_for(
                        out_queue.get(), timeout=_POLL_SECONDS * 5
                    )
                except asyncio.TimeoutError:
                    # Watchdog: the cooperative cancel normally ends the
                    # stream via the runner's error event; this only fires
                    # for a run wedged inside a single iteration.
                    if scope.stream_expired():
                        scope.request_cancel("timeout")
                        await write_line(
                            json.dumps(
                                {
                                    "type": "error",
                                    "reason": "timeout",
                                    "error": self._cancel_message(
                                        "timeout", scope
                                    ),
                                },
                                default=_json_default,
                            )
                        )
                        return
                    continue
                if event is _SENTINEL:
                    finished = True
                    break
                await write_line(json.dumps(event, default=_json_default))
        finally:
            if not finished:
                # Client gone or stream abandoned: stop the run promptly.
                if scope.cancelled() is None:
                    scope.request_cancel("disconnect")
                with _suppress_concurrent_errors():
                    await future

    @staticmethod
    def _cancel_message(reason: str, scope: _RunScope) -> str:
        if reason == "timeout":
            bound = scope.timeout_s
            return (
                f"run exceeded its deadline of {bound:.3f}s"
                if bound is not None
                else "run cancelled by deadline"
            )
        if reason == "shutdown":
            return "server is shutting down"
        return f"run cancelled ({reason})"

    # -- protocol ------------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One HTTP/1.1 exchange (the server always closes after it)."""
        try:
            method, path, headers = await _read_request_head(reader)
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length:
                body = await reader.readexactly(length)
            await self._dispatch(writer, method, path, body)
        except (asyncio.IncompleteReadError, ConnectionResetError, ValueError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        if method == "GET" and path == "/health":
            await _respond_json(
                writer,
                200,
                {
                    "status": "ok",
                    "execution": self.execution,
                    "cache": self.cache.stats(),
                    "executor": self.executor_stats(),
                },
            )
            return
        if method == "GET" and path == "/scenarios":
            await _respond_json(writer, 200, {"scenarios": scenario_names()})
            return
        if method == "POST" and path == "/run":
            await self._handle_run(writer, body)
            return
        await _respond_json(writer, 404, {"error": f"no route {method} {path}"})

    async def _handle_run(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = RunRequest.from_payload(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            await _respond_json(writer, 400, {"error": str(exc)})
            return
        try:
            get_scenario(request.scenario)
        except KeyError:
            await _respond_json(
                writer,
                404,
                {
                    "error": f"unknown scenario {request.scenario!r}",
                    "available": scenario_names(),
                },
            )
            return

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()

        async def write_line(line: str) -> None:
            writer.write(line.encode("utf-8") + b"\n")
            await writer.drain()

        await self.stream_run(request, write_line)

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        """Bind and return the listening server (``port=0`` picks a free one)."""
        return await asyncio.start_server(self.handle_connection, host, port)

    def close(self, grace_s: Optional[float] = None) -> None:
        """Shut down, cancelling in-flight runs within a bounded grace.

        Sets the shutdown flag every run scope observes (thread-tier runs
        abort at their next iteration boundary, process-tier drains mirror
        the cancel into their workers), waits up to ``grace_s`` (default:
        the configured ``shutdown_grace``) for active runs to drain, then
        abandons whatever is left rather than blocking exit on it.
        """
        grace = self.shutdown_grace if grace_s is None else float(grace_s)
        self._shutdown.set()
        deadline = time.monotonic() + max(0.0, grace)
        while time.monotonic() < deadline:
            with self._runs_lock:
                drained = self._active == 0 and self._submitted == self._completed
            if drained:
                break
            time.sleep(_POLL_SECONDS)
        self.executor.shutdown(wait=False, cancel_futures=True)
        purge_owned_segments()


class _suppress_concurrent_errors:
    """``await future`` in cleanup must never mask the original error."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(
            exc_type, (Exception, asyncio.CancelledError)
        )


async def _read_request_head(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str]]:
    """Parse the request line + headers; raises ``ValueError`` on garbage."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, headers


async def _respond_json(
    writer: asyncio.StreamWriter, status: int, payload: Dict[str, object]
) -> None:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found"}
    body = json.dumps(payload, default=_json_default).encode("utf-8") + b"\n"
    writer.write(
        f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n".encode("latin-1")
        + body
    )
    await writer.drain()


async def serve_forever(
    host: str,
    port: int,
    cache_dir: Path,
    max_workers: int = 8,
    execution: str = "thread",
    max_run_seconds: Optional[float] = None,
    cache_max_entries: Optional[int] = None,
    cache_max_bytes: Optional[int] = None,
    shutdown_grace: float = 10.0,
    ready_message: bool = True,
) -> None:
    """Run the service until cancelled (the ``python -m repro serve`` body)."""
    app = ServeApp(
        cache_dir,
        max_workers=max_workers,
        execution=execution,
        max_run_seconds=max_run_seconds,
        cache_max_entries=cache_max_entries,
        cache_max_bytes=cache_max_bytes,
        shutdown_grace=shutdown_grace,
    )
    server = await app.start(host, port)
    try:
        bound = server.sockets[0].getsockname()
        if ready_message:
            print(f"repro serve listening on {bound[0]}:{bound[1]}", file=sys.stderr)
            sys.stderr.flush()
        async with server:
            await server.serve_forever()
    finally:
        app.close()
