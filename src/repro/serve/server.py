"""The asyncio scenario-run service behind ``python -m repro serve``.

A deliberately small stdlib-only HTTP/1.1 server (``asyncio.start_server``
plus hand-rolled request parsing — no web framework in the image), because
the protocol is tiny:

``GET /health``
    ``{"status": "ok", "cache": {...}}`` — liveness plus cache counters.

``GET /scenarios``
    The registered workload names.

``POST /run``
    JSON body selecting a registered scenario and optional overrides
    (``ranks``, ``snapshots``, ``seed``, ``metric``, ``redistribution``,
    ``percent``, ``target``, ``render_mode``, ``backend``, ``pipelined``).
    The response streams NDJSON: one ``start`` event (with the cache
    verdict), one ``iteration`` event per completed pipeline iteration *as
    it completes*, and a final ``summary`` event matching ``python -m repro
    run``'s machine-readable contract.

Runs execute on a shared :class:`~concurrent.futures.ThreadPoolExecutor`,
so many concurrent requests multiplex over a bounded worker pool while the
event loop keeps streaming.  Scenario data resolves through the
:class:`~repro.serve.cache.ReplayCache`: the first request for a config
simulates CM1 and persists the snapshots, every identical request after it
replays them via read-only memory maps.
"""

from __future__ import annotations

import asyncio
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.backends import engine_backends
from repro.core.config import AdaptationConfig
from repro.core.results import IterationResult
from repro.metrics.registry import default_registry
from repro.scenarios import get_scenario, scenario_names
from repro.serve.cache import ReplayCache, scenario_cache_key

__all__ = ["RunRequest", "ServeApp", "serve_forever"]

_SENTINEL = object()


@dataclass(frozen=True)
class RunRequest:
    """One validated ``POST /run`` payload."""

    scenario: str
    ranks: Optional[int] = None
    snapshots: Optional[int] = None
    seed: Optional[int] = None
    metric: str = "VAR"
    redistribution: str = "none"
    percent: Optional[float] = None
    target: Optional[float] = None
    render_mode: str = "count"
    backend: Optional[str] = None
    pipelined: bool = True

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RunRequest":
        """Build a request from a decoded JSON body; raises ``ValueError``."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        scenario = payload.get("scenario")
        if not isinstance(scenario, str) or not scenario.strip():
            raise ValueError("'scenario' (a registered name) is required")
        known = {
            "scenario", "ranks", "snapshots", "seed", "metric",
            "redistribution", "percent", "target", "render_mode", "backend",
            "pipelined",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        request = cls(
            scenario=scenario.strip(),
            ranks=None if payload.get("ranks") is None else int(payload["ranks"]),
            snapshots=(
                None if payload.get("snapshots") is None else int(payload["snapshots"])
            ),
            seed=None if payload.get("seed") is None else int(payload["seed"]),
            metric=str(payload.get("metric", "VAR")),
            redistribution=str(payload.get("redistribution", "none")),
            percent=(
                None if payload.get("percent") is None else float(payload["percent"])
            ),
            target=None if payload.get("target") is None else float(payload["target"]),
            render_mode=str(payload.get("render_mode", "count")),
            backend=(
                None
                if payload.get("backend") is None
                else str(payload["backend"]).strip().lower()
            ),
            pipelined=bool(payload.get("pipelined", True)),
        )
        if request.metric.strip().upper() not in default_registry():
            raise ValueError(
                f"unknown metric {request.metric!r}; available: "
                f"{', '.join(default_registry().names())}"
            )
        if request.redistribution not in ("none", "shuffle", "round_robin"):
            raise ValueError(
                f"redistribution must be 'none', 'shuffle' or 'round_robin', "
                f"got {request.redistribution!r}"
            )
        if request.render_mode not in ("count", "mesh"):
            raise ValueError(
                f"render_mode must be 'count' or 'mesh', got {request.render_mode!r}"
            )
        if request.backend is not None and request.backend not in engine_backends():
            raise ValueError(
                f"unknown backend {request.backend!r}; available: "
                f"{', '.join(engine_backends())}"
            )
        return request


def _json_default(value):
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def _iteration_row(result: IterationResult) -> Dict[str, object]:
    """Per-iteration JSON row — same shape as ``python -m repro run``."""
    return {
        "iteration": result.iteration,
        "percent_reduced": result.percent_reduced,
        "nblocks": result.nblocks,
        "nreduced": result.nreduced,
        "moved_bytes": result.moved_bytes,
        "modelled_steps": dict(result.modelled_steps),
        "modelled_total": result.modelled_total,
        "load_imbalance": result.load_imbalance,
    }


class ServeApp:
    """The service: cache + worker pool + request handling.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk replay cache.
    max_workers:
        Size of the shared run pool — the number of scenario runs that can
        execute concurrently (further requests queue).
    """

    def __init__(self, cache_dir: Path, max_workers: int = 8) -> None:
        self.cache = ReplayCache(Path(cache_dir))
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )

    # -- run execution -------------------------------------------------------

    def _execute_run(
        self,
        request: RunRequest,
        config,
        emit,
    ) -> Dict[str, object]:
        """Blocking scenario run (worker-pool side).

        ``emit(event_dict)`` is called for the start event and every
        completed iteration; the returned dict is the final summary event.
        """
        scenario, was_hit = self.cache.scenario_for(config)
        emit(
            {
                "type": "start",
                "scenario": config.name or request.scenario,
                "cache": "hit" if was_hit else "miss",
                "cache_key": scenario_cache_key(config),
                "iterations": config.nsnapshots,
            }
        )
        adaptation: Optional[AdaptationConfig] = None
        if request.target is not None:
            adaptation = AdaptationConfig(enabled=True, target_seconds=request.target)
        pipeline = scenario.build_pipeline(
            metric=request.metric,
            redistribution=request.redistribution,
            adaptation=adaptation,
            render_mode=request.render_mode,
            engine=request.backend,
            pipelined=request.pipelined,
        )
        run = pipeline.run(
            scenario.iteration_blocks(),
            percent_override=request.percent,
            on_iteration=lambda result: emit(
                {"type": "iteration", **_iteration_row(result)}
            ),
        )
        return {
            "type": "summary",
            "scenario": {
                "name": config.name or request.scenario,
                "ncores": config.ncores,
                "shape": list(config.shape),
                "nsnapshots": config.nsnapshots,
                "seed": config.seed,
            },
            "config": pipeline.config_summary(),
            "run": run.summary(),
            "cache": self.cache.stats(),
        }

    async def stream_run(self, request: RunRequest, write_line) -> None:
        """Run a request on the pool, awaiting ``write_line`` per event."""
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        spec = get_scenario(request.scenario)  # KeyError -> handled by caller
        config = spec.build(
            ncores=request.ranks,
            nsnapshots=request.snapshots,
            seed=request.seed,
        )

        def emit(event: Dict[str, object]) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        def runner() -> None:
            try:
                summary = self._execute_run(request, config, emit)
                emit(summary)
            except Exception as exc:  # surfaced as an error event
                emit({"type": "error", "error": str(exc)})
            finally:
                loop.call_soon_threadsafe(queue.put_nowait, _SENTINEL)

        future = loop.run_in_executor(self.executor, runner)
        try:
            while True:
                event = await queue.get()
                if event is _SENTINEL:
                    break
                await write_line(json.dumps(event, default=_json_default))
        finally:
            await future

    # -- protocol ------------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One HTTP/1.1 exchange (the server always closes after it)."""
        try:
            method, path, headers = await _read_request_head(reader)
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length:
                body = await reader.readexactly(length)
            await self._dispatch(writer, method, path, body)
        except (asyncio.IncompleteReadError, ConnectionResetError, ValueError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        if method == "GET" and path == "/health":
            await _respond_json(
                writer, 200, {"status": "ok", "cache": self.cache.stats()}
            )
            return
        if method == "GET" and path == "/scenarios":
            await _respond_json(writer, 200, {"scenarios": scenario_names()})
            return
        if method == "POST" and path == "/run":
            await self._handle_run(writer, body)
            return
        await _respond_json(writer, 404, {"error": f"no route {method} {path}"})

    async def _handle_run(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = RunRequest.from_payload(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            await _respond_json(writer, 400, {"error": str(exc)})
            return
        try:
            get_scenario(request.scenario)
        except KeyError:
            await _respond_json(
                writer,
                404,
                {
                    "error": f"unknown scenario {request.scenario!r}",
                    "available": scenario_names(),
                },
            )
            return

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()

        async def write_line(line: str) -> None:
            writer.write(line.encode("utf-8") + b"\n")
            await writer.drain()

        await self.stream_run(request, write_line)

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        """Bind and return the listening server (``port=0`` picks a free one)."""
        return await asyncio.start_server(self.handle_connection, host, port)

    def close(self) -> None:
        """Shut the worker pool down (pending runs are allowed to finish)."""
        self.executor.shutdown(wait=True)


async def _read_request_head(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str]]:
    """Parse the request line + headers; raises ``ValueError`` on garbage."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, headers


async def _respond_json(
    writer: asyncio.StreamWriter, status: int, payload: Dict[str, object]
) -> None:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found"}
    body = json.dumps(payload, default=_json_default).encode("utf-8") + b"\n"
    writer.write(
        f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n".encode("latin-1")
        + body
    )
    await writer.drain()


async def serve_forever(
    host: str,
    port: int,
    cache_dir: Path,
    max_workers: int = 8,
    ready_message: bool = True,
) -> None:
    """Run the service until cancelled (the ``python -m repro serve`` body)."""
    app = ServeApp(cache_dir, max_workers=max_workers)
    server = await app.start(host, port)
    try:
        bound = server.sockets[0].getsockname()
        if ready_message:
            print(f"repro serve listening on {bound[0]}:{bound[1]}", file=sys.stderr)
            sys.stderr.flush()
        async with server:
            await server.serve_forever()
    finally:
        app.close()
