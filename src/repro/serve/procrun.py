"""Worker-process side of the serve mode's process execution tier.

``ServeApp(execution="process")`` dispatches each ``POST /run`` to a worker
process from the shared :func:`~repro.utils.procpool.shared_process_pool`.
The task shipped to the worker is deliberately tiny: the request fields, the
resolved :class:`~repro.scenarios.ScenarioConfig`, and the *path* of the
replay-cache store — never snapshot arrays.  The worker re-opens the store's
raw layout through read-only ``np.memmap`` views (:func:`CM1Dataset.load`
with ``mmap=True``), so parent and workers share the same physical page
cache and the handoff stays zero-copy no matter how large the dataset is.

Two proxy objects from the shared :func:`~repro.utils.procpool.shared_manager`
connect the run back to the server:

``events``
    A queue the worker pushes one ``iteration`` event dict onto per
    completed pipeline iteration, as it completes — the server forwards
    them straight onto the NDJSON stream, so latency-to-first-event is the
    first iteration's latency, not the whole run's.
``cancel``
    An event the server sets to abort the run (request timeout, server
    shutdown, client gone).  The worker checks it — and its wall-clock
    deadline — between iterations and unwinds with :class:`RunCancelled`;
    the pipeline's ``finally`` blocks plus a defensive
    :func:`~repro.grid.shm.purge_owned_segments` guarantee a cancelled run
    leaks no shared-memory segments.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional

from repro.cm1.dataset import CM1Dataset
from repro.core.config import AdaptationConfig
from repro.core.results import IterationResult
from repro.grid.shm import purge_owned_segments
from repro.scenarios import ScenarioConfig

__all__ = ["RunCancelled", "iteration_row", "run_scenario_in_worker"]


class RunCancelled(Exception):
    """A run aborted before completing (deadline, shutdown, or disconnect).

    ``reason`` becomes the terminal NDJSON error event's ``reason`` field
    (``"timeout"`` / ``"shutdown"`` / ``"disconnect"``).  Carries its reason
    through ``args`` so instances survive the pool's pickle round-trip.
    """

    def __init__(self, reason: str = "timeout") -> None:
        super().__init__(reason)
        self.reason = reason


def iteration_row(result: IterationResult) -> Dict[str, object]:
    """Per-iteration JSON row — same shape as ``python -m repro run``."""
    return {
        "iteration": result.iteration,
        "percent_reduced": result.percent_reduced,
        "nblocks": result.nblocks,
        "nreduced": result.nreduced,
        "moved_bytes": result.moved_bytes,
        "modelled_steps": dict(result.modelled_steps),
        "modelled_total": result.modelled_total,
        "load_imbalance": result.load_imbalance,
    }


def run_scenario_in_worker(
    request: Dict[str, object],
    config: ScenarioConfig,
    store_dir: str,
    events,
    cancel,
    deadline: Optional[float],
) -> Dict[str, object]:
    """Execute one scenario run inside a pool worker; returns the summary.

    Parameters
    ----------
    request:
        The validated ``RunRequest`` fields as a plain dict (kept free of
        server-module types so the task pickles without importing the
        server).
    config:
        The fully resolved scenario config (identity of the cached data).
    store_dir:
        Path of the raw-layout replay store the parent pinned for the
        duration of this run; re-opened here with ``mmap=True``.
    events, cancel:
        Manager proxies (see module docstring).
    deadline:
        Absolute ``time.time()`` deadline, or ``None``.  Wall-clock rather
        than monotonic so the value is meaningful across processes on every
        platform.
    """
    def check() -> None:
        if cancel.is_set():
            raise RunCancelled("timeout")
        if deadline is not None and time.time() > deadline:
            raise RunCancelled("timeout")

    try:
        check()
        dataset = CM1Dataset.load(
            Path(store_dir), field_name=config.field_name, mmap=True
        )
        # Import deferred: the experiments layer is heavy, and fork-started
        # workers inherit the parent's modules anyway.
        from repro.experiments.common import ExperimentScenario

        scenario = ExperimentScenario(config, dataset=dataset)
        backend = request.get("backend")
        if backend == "process":
            # No nested process pools inside a pool worker.  The parity
            # sweep guarantees the vectorized backend is bitwise-identical,
            # so the substitution is observable only in config_summary.
            backend = "vectorized"
        adaptation = None
        if request.get("target") is not None:
            adaptation = AdaptationConfig(
                enabled=True, target_seconds=float(request["target"])
            )
        pipeline = scenario.build_pipeline(
            metric=request.get("metric", "VAR"),
            redistribution=request.get("redistribution", "none"),
            adaptation=adaptation,
            render_mode=request.get("render_mode", "count"),
            engine=backend,
            pipelined=bool(request.get("pipelined", True)),
        )

        def on_iteration(result: IterationResult) -> None:
            check()
            events.put({"type": "iteration", **iteration_row(result)})

        run = pipeline.run(
            scenario.iteration_blocks(),
            percent_override=request.get("percent"),
            on_iteration=on_iteration,
        )
        check()
        return {
            "type": "summary",
            "scenario": {
                "name": config.name or request.get("scenario"),
                "ncores": config.ncores,
                "shape": list(config.shape),
                "nsnapshots": config.nsnapshots,
                "seed": config.seed,
            },
            "config": pipeline.config_summary(),
            "run": run.summary(),
        }
    finally:
        # A cancelled/failed run must not leak shm segments in this worker.
        purge_owned_segments()
