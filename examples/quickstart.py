#!/usr/bin/env python
"""Quickstart: run the adaptive in situ pipeline on a small synthetic storm.

This is the 60-second tour of the library: build a laptop-scale synthetic CM1
dataset, decompose it over a few virtual ranks, and run the six-step
performance-constrained pipeline (score, sort, reduce, redistribute, render,
adapt) with a time budget.  The pipeline's modelled "Blue Waters seconds"
converge to the requested target by reducing low-relevance blocks.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.config import AdaptationConfig
from repro.experiments.common import ExperimentScenario, ScenarioConfig


def main() -> None:
    # A 16-rank scenario: 96x96x24 grid, 16 blocks per rank, 6 snapshots.
    scenario = ExperimentScenario(
        ScenarioConfig(
            ncores=16,
            shape=(96, 96, 24),
            blocks_per_subdomain=(2, 2, 4),
            nsnapshots=6,
        )
    )
    target = 30.0  # seconds per iteration (modelled platform time)
    # The engine backend is configurable ("vectorized" scores stacked
    # BlockBatch arrays, "serial" loops per block); both give identical runs.
    pipeline = scenario.build_pipeline(
        metric="VAR",
        redistribution="round_robin",
        adaptation=AdaptationConfig(enabled=True, target_seconds=target),
        engine="vectorized",
    )

    print(f"platform        : {scenario.platform.name}")
    print(f"engine          : {pipeline.engine.backend}")
    print(f"blocks/iteration: {scenario.nblocks}")
    print(f"time budget     : {target:.1f} s/iteration\n")
    print(f"{'iter':>4} {'reduced %':>10} {'pipeline s':>11} {'rendering s':>12} {'imbalance':>10}")
    for i in range(12):
        blocks = scenario.blocks_for(i % len(scenario.dataset))
        result, _ = pipeline.process_iteration(blocks)
        print(
            f"{i:>4} {result.percent_reduced:>10.1f} {result.modelled_total:>11.1f} "
            f"{result.modelled_rendering:>12.1f} {result.load_imbalance:>10.2f}"
        )

    run = pipeline.monitor.to_run_result(pipeline.config_summary())
    summary = run.summary()
    print("\nmean full-pipeline time: %.1f s (target %.1f s)" % (summary["total_mean"], target))
    print("final reduction percentage: %.1f %%" % summary["percent_final"])
    moved = pipeline.monitor.payload_bytes_series("redistribution")
    print("redistribution traffic : %.2f MB total" % (sum(moved) / 1e6))


if __name__ == "__main__":
    main()
