#!/usr/bin/env python
"""Performance-constrained in situ visualization of an evolving supercell.

The full workflow of the paper, at laptop scale:

* a synthetic CM1 supercell evolves over 20 snapshots (it grows and moves);
* the in situ pipeline renders the 45 dBZ isosurface at every snapshot under a
  strict time budget, with and without load redistribution;
* the run compares three configurations, mirroring the paper's Figures 10/11:
  no control at all, adaptation only, and adaptation + round-robin
  redistribution.

Run with::

    python examples/adaptive_supercell.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import AdaptationConfig
from repro.experiments.common import ExperimentScenario, ScenarioConfig


def run_configuration(scenario, label, redistribution, adaptation, niterations=20):
    """Run one pipeline configuration over the evolving storm."""
    # The vectorized engine scores all ranks' blocks as stacked BlockBatch
    # arrays; results are identical to engine="serial", only faster.
    pipeline = scenario.build_pipeline(
        metric="VAR",
        redistribution=redistribution,
        adaptation=adaptation,
        engine="vectorized",
    )
    times, percents = [], []
    for i in range(niterations):
        blocks = scenario.blocks_for(i % len(scenario.dataset))
        result, _ = pipeline.process_iteration(blocks)
        times.append(result.modelled_total)
        percents.append(result.percent_reduced)
    print(f"\n[{label}]")
    print("  iteration time (s): " + " ".join(f"{t:6.1f}" for t in times))
    print("  reduced blocks (%): " + " ".join(f"{p:6.1f}" for p in percents))
    print(
        "  mean %.1f s, max %.1f s, final reduction %.0f%%"
        % (float(np.mean(times)), float(np.max(times)), percents[-1])
    )
    return times


def main() -> None:
    scenario = ExperimentScenario(
        ScenarioConfig(
            ncores=32,
            shape=(132, 132, 30),
            blocks_per_subdomain=(2, 2, 4),
            nsnapshots=10,
        )
    )
    baseline = scenario.build_pipeline(metric="VAR", redistribution="none")
    reference, _ = baseline.process_iteration(scenario.blocks_for(0), percent_override=0.0)
    target = reference.modelled_rendering / 6.0
    print(
        "Uncontrolled rendering of snapshot 0 costs %.1f modelled seconds; "
        "setting a budget of %.1f s/iteration." % (reference.modelled_rendering, target)
    )

    no_control = AdaptationConfig(enabled=False, target_seconds=target)
    budget = AdaptationConfig(enabled=True, target_seconds=target)

    run_configuration(scenario, "no control (p=0, no redistribution)", "none", no_control)
    adapt_only = run_configuration(scenario, "adaptation only", "none", budget)
    adapt_redist = run_configuration(
        scenario, "adaptation + round-robin redistribution", "round_robin", budget
    )

    mean_only = float(np.mean(adapt_only[5:]))
    mean_full = float(np.mean(adapt_redist[5:]))
    print(
        "\nAfter warm-up, adaptation alone averages %.1f s and the full pipeline %.1f s "
        "against a %.1f s budget." % (mean_only, mean_full, target)
    )


if __name__ == "__main__":
    main()
