#!/usr/bin/env python
"""Render the reflectivity field: isosurface, volume projection, and colormap.

Reproduces the spirit of the paper's Figure 1 at laptop scale: the 45 dBZ
isosurface of the synthetic supercell is extracted with marching cubes and
rasterized by the software renderer, next to a volume-style maximum-intensity
projection and a horizontal colormap — for the original data and for the data
with every block reduced to its 8 corners.

Images are written as PGM files under ``examples/output/``.

Run with::

    python examples/render_reflectivity.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cm1 import CM1Config, CM1Simulation
from repro.experiments.common import ExperimentScenario, ScenarioConfig
from repro.experiments.fig1_renderings import run_fig1
from repro.viz.camera import Camera
from repro.viz.framebuffer import Framebuffer
from repro.viz.marching_cubes import marching_cubes
from repro.viz.rasterizer import rasterize_mesh

OUTPUT_DIR = Path(__file__).parent / "output"


def render_isosurface(field: np.ndarray, level: float, path: Path) -> int:
    """Extract and rasterize the ``level`` isosurface; returns the triangle count."""
    mesh = marching_cubes(field, level)
    if mesh.is_empty:
        print(f"  no isosurface at {level} dBZ")
        return 0
    camera = Camera.fit_bounds(*mesh.bounds(), direction=(1.0, -0.7, 0.45))
    fb = Framebuffer(480, 360, background=0.05)
    rasterize_mesh(mesh, camera, fb)
    fb.save_pgm(path)
    print(f"  {mesh.ntriangles} triangles -> {path}")
    return mesh.ntriangles


def main() -> None:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)

    print("Rendering the 45 dBZ isosurface of a standalone snapshot...")
    sim = CM1Simulation(CM1Config(shape=(110, 110, 20)))
    field = np.asarray(sim.snapshot(4).get_field("dbz"), dtype=np.float64)
    render_isosurface(field, 45.0, OUTPUT_DIR / "isosurface_45dbz.pgm")

    print("Reproducing the Figure 1 panels (original vs filtered)...")
    scenario = ExperimentScenario(
        ScenarioConfig(ncores=16, shape=(88, 88, 24), blocks_per_subdomain=(2, 2, 2), nsnapshots=1)
    )
    fig1 = run_fig1(scenario)
    paths = fig1.save(OUTPUT_DIR)
    for name, path in paths.items():
        print(f"  wrote {path}")
    print(
        "  modelled rendering cost: %.1f s (original) vs %.2f s (all blocks reduced)"
        % (fig1.render_seconds_original, fig1.render_seconds_filtered)
    )


if __name__ == "__main__":
    main()
