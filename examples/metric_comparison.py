#!/usr/bin/env python
"""Compare the block-scoring metrics on a synthetic supercell snapshot.

This example walks through the analysis scientists would do before choosing a
metric for their runs (Sections IV-B and V-B of the paper):

1. score every block of one snapshot with the six representative metrics;
2. look at the pairwise rank agreement between metrics (Figure 3);
3. look at the scoremaps — which regions each metric would preserve (Figure 4);
4. compare the (modelled) cost of each metric for the paper's full-scale
   workload (Table I).

Scoremap images are written under ``examples/output/``.

Run with::

    python examples/metric_comparison.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.common import ExperimentScenario, ScenarioConfig
from repro.experiments.fig3_metric_agreement import format_fig3, run_fig3
from repro.experiments.fig4_scoremaps import format_fig4, run_fig4
from repro.experiments.table1_metric_cost import format_table, run_table1
from repro.viz.framebuffer import Framebuffer

OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    scenario = ExperimentScenario(
        ScenarioConfig(ncores=16, shape=(88, 88, 24), blocks_per_subdomain=(2, 2, 2), nsnapshots=1)
    )

    print(format_table(run_table1(scenario, max_blocks=64)))
    print()
    print(format_fig3(run_fig3(scenario, max_blocks=128)))
    print()
    fig4 = run_fig4(scenario)
    print(format_fig4(fig4))
    Framebuffer.save_array_pgm(fig4.original_slice, OUTPUT_DIR / "scoremap_original_dbz.pgm")
    for name, smap in fig4.scoremaps.items():
        path = OUTPUT_DIR / f"scoremap_{name.lower()}.pgm"
        Framebuffer.save_array_pgm(smap.image, path)
        print(f"  wrote {path}")


if __name__ == "__main__":
    main()
